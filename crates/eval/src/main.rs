//! `janitizer-eval`: regenerates every table and figure of the paper.
//!
//! ```text
//! janitizer-eval [--scale S] [--trace FILE] [--threads N] \
//!     [--reports DIR] [--juliet-limit N] [--inject-faults seed=N,rate=R] \
//!     [--no-traces] [--trace-threshold N] \
//!     [fig7|...|fig14|soundness|rules|disasm <module>|profile <figure>|report <case>|all]
//! ```
//!
//! Results print as aligned tables and are also written as CSV and JSON
//! under `results/`. The `rules` subcommand additionally materializes the
//! per-module rewrite-rule files the static analyzer produces (paper
//! §3.3.1: rules "are recorded in separate files for each binary
//! module").
//!
//! `profile <figure>` runs one figure with telemetry collection enabled
//! and writes a JSON profile plus a folded-stack (`flamegraph.pl`-ready)
//! cycle attribution under `results/`. `--trace FILE` enables collection
//! for the whole invocation and writes the combined JSON profile to
//! `FILE` on exit.
//!
//! `report <case>` re-runs one Juliet case's bad variant under
//! JASan-hybrid with forensics enabled and prints the full ASan-style
//! violation report(s). `--reports DIR` makes fig10 write one report
//! pair (`.txt` + `.json`) per detected violation into `DIR`;
//! `--juliet-limit N` truncates the Juliet suite (CI smoke runs). The
//! fig10 detection counts are identical with reporting on or off.
//!
//! `--inject-faults seed=N,rate=R` routes every figure run's rule files
//! through the untrusted serialize-verify-load path and corrupts each
//! module's bytes with probability `R` under a deterministic per-module
//! stream derived from `N`. Corrupted modules degrade to dynamic-only
//! instrumentation instead of aborting; a summary line reports which
//! modules degraded and why. Without the flag, runs take the trusted
//! in-memory path and figure output is byte-identical to a build without
//! fault injection. All result files are written atomically (temp file +
//! rename), so an interrupted run never leaves torn CSV/JSON output.
//!
//! `--no-traces` disables the DBT engine's host-side trace machinery
//! (direct-branch chaining, superblock formation, probe-fusion
//! precompute) and `--trace-threshold N` overrides the superblock
//! hotness threshold. Both are host-only knobs: figure results are
//! byte-identical with traces on or off (test-enforced); only host wall
//! time moves. Use them for A/B measurement and bisection.
//!
//! `--threads N` caps the evaluation's worker threads (default: one per
//! core; `--threads 1` is the fully serial reference). Figure output is
//! byte-identical at any thread count. `all` additionally writes
//! `BENCH_eval.json` to the working directory — host wall-clock per
//! figure, rule-cache hit/miss counters, and a measured serial-vs-parallel
//! speedup — deliberately *outside* `results/`, which holds only
//! deterministic data.

use janitizer_eval::*;
use janitizer_telemetry as telemetry;

/// Writes one figure's CSV and JSON under `results/`, propagating I/O
/// errors instead of swallowing them.
fn write_results(name: &str, fig: &FigResult) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    write_atomic(format!("results/{name}.csv"), fig.to_csv().as_bytes())?;
    write_atomic(format!("results/{name}.json"), fig.to_json().as_bytes())?;
    Ok(())
}

/// Reports a failed result write and counts it toward the exit code.
fn persist(name: &str, fig: &FigResult, failures: &mut u32) {
    if let Err(e) = write_results(name, fig) {
        eprintln!("error: failed to write results/{name}.{{csv,json}}: {e}");
        *failures += 1;
    }
}

/// Runs one `FigResult`-producing figure by name.
fn run_figure(ew: &EvalWorld, name: &str) -> Option<FigResult> {
    Some(match name {
        "fig7" => fig7(ew),
        "fig8" => fig8(ew),
        "fig9" => fig9(ew),
        "fig11" => fig11(ew),
        "fig12" => fig12(ew),
        "fig13" => fig13(ew),
        "fig14" => fig14(ew),
        _ => return None,
    })
}

/// Writes the collected telemetry registry as a JSON profile and a
/// folded-stack file.
fn write_profile(
    reg: &telemetry::Registry,
    json_path: &str,
    folded_path: &str,
) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    write_atomic(json_path, telemetry::export::to_json(reg).as_bytes())?;
    write_atomic(folded_path, telemetry::export::to_folded(reg).as_bytes())?;
    Ok(())
}

/// Writes `BENCH_eval.json`: host wall-clock per figure, rule-cache
/// counters, thread count, and the measured serial-vs-parallel speedup.
fn write_bench(
    per_figure: &[(String, f64)],
    cache: janitizer_core::RuleCacheStats,
    serial_parallel: Option<(f64, f64)>,
) -> std::io::Result<()> {
    use janitizer_telemetry::json::Json;
    let total_ms: f64 = per_figure.iter().map(|(_, ms)| ms).sum();
    let mut fields = vec![
        ("threads".to_string(), Json::U64(threads() as u64)),
        (
            "figures".to_string(),
            Json::Arr(
                per_figure
                    .iter()
                    .map(|(name, ms)| {
                        Json::obj([("name", Json::str(name.clone())), ("wall_ms", Json::F64(*ms))])
                    })
                    .collect(),
            ),
        ),
        ("total_wall_ms".to_string(), Json::F64(total_ms)),
        (
            "rule_cache".to_string(),
            Json::obj([
                ("hits", Json::U64(cache.hits)),
                ("misses", Json::U64(cache.misses)),
            ]),
        ),
    ];
    if let Some((serial_ms, parallel_ms)) = serial_parallel {
        fields.push((
            "fig14_speedup".to_string(),
            Json::obj([
                ("serial_ms", Json::F64(serial_ms)),
                ("parallel_ms", Json::F64(parallel_ms)),
                ("speedup", Json::F64(serial_ms / parallel_ms.max(1e-9))),
            ]),
        ));
    }
    write_atomic("BENCH_eval.json", Json::Obj(fields).render_pretty().as_bytes())
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no external deps).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Appends one dated line to `BENCH_history.jsonl` — the perf
/// trajectory across invocations of `all` (append-only by design, so it
/// accumulates across sessions; `BENCH_eval.json` stays the latest
/// snapshot). Each line carries the per-figure wall clocks, the
/// rule-cache hit/miss counters, and — when `--store` is live — the
/// persistent-store counters, so the trajectory is attributable without
/// replaying the run.
fn append_bench_history(
    per_figure: &[(String, f64)],
    cache: janitizer_core::RuleCacheStats,
    store: Option<janitizer_store::StoreStats>,
) -> std::io::Result<()> {
    use janitizer_telemetry::json::Json;
    use std::io::Write as _;
    let total_ms: f64 = per_figure.iter().map(|(_, ms)| ms).sum();
    let mut fields = vec![
        // Stamped since PR 9 — the trend reader keys on it and skips
        // pre-schema lines (the seed line lacks `figure_wall_ms`).
        ("schema".to_string(), Json::str(BENCH_HISTORY_SCHEMA)),
        ("date".to_string(), Json::str(today_utc())),
        ("threads".to_string(), Json::U64(threads() as u64)),
        ("figures".to_string(), Json::U64(per_figure.len() as u64)),
        ("total_wall_ms".to_string(), Json::F64(total_ms)),
        (
            "figure_wall_ms".to_string(),
            Json::Obj(
                per_figure
                    .iter()
                    .map(|(name, ms)| (name.clone(), Json::F64(*ms)))
                    .collect(),
            ),
        ),
        (
            "rule_cache".to_string(),
            Json::obj([
                ("hits", Json::U64(cache.hits)),
                ("misses", Json::U64(cache.misses)),
            ]),
        ),
    ];
    if let Some(st) = store {
        fields.push((
            "store".to_string(),
            Json::obj([
                ("hits", Json::U64(st.hits)),
                ("misses", Json::U64(st.misses)),
                ("corrupt", Json::U64(st.corrupt)),
                ("recovered", Json::U64(st.recovered)),
                ("retries", Json::U64(st.retries)),
            ]),
        ));
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_history.jsonl")?;
    writeln!(f, "{}", Json::Obj(fields).render())
}

/// Renders the accumulated `(workload, config)` profiles as one
/// schema-stable `janitizer.profile/v2` bundle document.
fn profile_bundle_json(
    target: &str,
    top: usize,
    profiles: &std::collections::BTreeMap<(String, String), janitizer_core::RunProfile>,
) -> String {
    use janitizer_telemetry::json::Json;
    Json::obj([
        ("schema", Json::str("janitizer.profile/v2")),
        ("target", Json::str(target)),
        ("top", Json::U64(top as u64)),
        (
            "cells",
            Json::Arr(
                profiles
                    .iter()
                    .map(|((workload, config), p)| {
                        Json::obj([
                            ("workload", Json::str(workload.clone())),
                            ("config", Json::str(config.clone())),
                            ("profile", p.to_json(top)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

/// Folded stacks for the whole bundle: each cell's lines prefixed with
/// `workload;config;` so one flamegraph can separate the cells.
fn profile_bundle_folded(
    profiles: &std::collections::BTreeMap<(String, String), janitizer_core::RunProfile>,
) -> String {
    let mut out = String::new();
    for ((workload, config), p) in profiles {
        for line in p.to_folded().lines() {
            out.push_str(workload);
            out.push(';');
            out.push_str(config);
            out.push(';');
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Concatenated per-cell overhead-budget tables.
fn profile_bundle_budgets(
    top: usize,
    profiles: &std::collections::BTreeMap<(String, String), janitizer_core::RunProfile>,
) -> String {
    let mut out = String::new();
    for p in profiles.values() {
        out.push_str(&p.budget_table(top));
        out.push('\n');
    }
    out
}

/// Writes the three `explain` artifacts for the drained profiles and
/// prints the budget tables.
fn write_explain_artifacts(
    target: &str,
    top: usize,
    out_dir: &str,
    profiles: &std::collections::BTreeMap<(String, String), janitizer_core::RunProfile>,
    failures: &mut u32,
) {
    let json_path = format!("{out_dir}/explain-{target}.v2.json");
    let folded_path = format!("{out_dir}/explain-{target}.folded");
    let budget_path = format!("{out_dir}/explain-{target}-budget.txt");
    let budgets = profile_bundle_budgets(top, profiles);
    let write_all = || -> std::io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        write_atomic(&json_path, profile_bundle_json(target, top, profiles).as_bytes())?;
        write_atomic(&folded_path, profile_bundle_folded(profiles).as_bytes())?;
        write_atomic(&budget_path, budgets.as_bytes())?;
        Ok(())
    };
    match write_all() {
        Ok(()) => eprintln!(
            "explain artifacts written to {json_path}, {folded_path}, {budget_path}"
        ),
        Err(e) => {
            eprintln!("error: failed to write explain artifacts under {out_dir}: {e}");
            *failures += 1;
        }
    }
    print!("{budgets}");
}

/// `explain diff <A> <B>`: parses two serialized profile bundles,
/// prints the ranked cycle-delta report, and applies the optional perf
/// gate (`--gate RATIO` fails the process when any cell's total-cycles
/// ratio exceeds it). Exit codes: 0 ok, 1 gate failed, 2 bad input.
fn run_explain_diff(a_path: &str, b_path: &str, top: usize, gate: Option<f64>) -> i32 {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let (a, b) = match (read(a_path), read(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    match janitizer_profile::diff::diff_bundles(&a, &b, top) {
        Ok((diff, report)) => {
            print!("{report}");
            if let Some(g) = gate {
                let worst = diff.worst_total_ratio();
                if worst > g {
                    eprintln!(
                        "perf gate FAILED: worst cell total ratio {worst:.4} exceeds gate {g}"
                    );
                    return 1;
                }
                eprintln!("perf gate ok: worst cell total ratio {worst:.4} within gate {g}");
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// `explain trend`: reads `BENCH_history.jsonl` and prints the
/// wall-clock trend (pre-schema lines are tolerated).
fn run_explain_trend(path: &str) -> i32 {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            print!("{}", bench_trend(&text));
            0
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            2
        }
    }
}

/// The complete CLI surface, printed by `--help` and on bad arguments.
fn usage() -> String {
    "\
janitizer-eval — regenerates every table and figure of the paper

usage: janitizer-eval [FLAGS] [SUBCOMMANDS]

subcommands (default: all):
  all                      every figure plus BENCH_eval.json/BENCH_history.jsonl
  fig7 .. fig14            one figure (fig10 is the Juliet detection suite)
  rules                    materialize per-module .jrul rewrite-rule files
  soundness                false-positive table on benign runs
  disasm <module>          disassemble one module
  report <case>            re-run one Juliet case with full forensics
  serve                    deterministic multi-client analysis-service simulation
  gauntlet                 hostile-module suite under every disassembly backend
  profile <figure>         run one figure with telemetry, write JSON + folded stacks
  explain <fig|workload>   overhead-attribution budgets + janitizer.profile/v2 bundle
  explain diff <A> <B>     rank per-site cycle deltas between two profile bundles
  explain trend            read BENCH_history.jsonl and print the wall-clock trend

flags:
  --scale S                shrink/grow guest workloads (default 1.0)
  --threads N              worker threads (default: one per core; output is
                           byte-identical at any N)
  --out DIR                artifact directory (default results/)
  --top N                  rows per ranked table (profile/explain/diff; default 10)
  --trace FILE             collect telemetry for the whole run, write FILE on exit
  --profile                arm the deterministic cycle profiler for figure runs
  --no-traces              disable DBT trace layer (chaining/superblocks/fusion)
  --trace-threshold N      superblock hotness threshold override
  --reports DIR            fig10: write one forensics report pair per violation
  --juliet-limit N         fig10: truncate the Juliet suite (CI smoke)
  --inject-faults seed=N,rate=R
                           corrupt rule files on the untrusted load path
  --disasm-backend NAME    disassembly backend for every static analysis:
                           hybrid (default), evidence, cet-anchor
  --store DIR              persistent rule store (crash-safe, content-addressed)
  --store-kill-after N     inject a store crash after N commits
  --quarantine-limit N     cap store quarantine growth: prune the oldest
                           quarantined entries past N at exit
  --serve-clients N        serve: concurrent client threads (default 4)
  --serve-requests N       serve: requests per client (default 8)
  --serve-seed N           serve: request-stream seed (default 7)
  --serve-budget N         serve: per-request analysis work budget
  --metrics-out DIR        serve: write serve-metrics.{json,om},
                           serve-metrics-host.json and a flight snapshot
  --flight-recorder        arm the black-box event ring (dumps on panic and
                           degradation trips; observation-only)
  --gate RATIO             explain diff: exit 1 if any site regresses worse
                           than RATIO (e.g. 1.5)
  --help                   this text
"
    .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut trace: Option<String> = None;
    let mut threads_flag = 0usize;
    let mut reports_dir: Option<String> = None;
    let mut juliet_limit: Option<usize> = None;
    let mut inject: Option<janitizer_core::FaultInjection> = None;
    let mut store_dir: Option<String> = None;
    let mut store_kill_after: Option<u64> = None;
    let mut quarantine_limit: Option<usize> = None;
    let mut serve_cfg = ServeSimConfig::default();
    let mut profile_flag = false;
    let mut top = 10usize;
    let mut out_dir = "results".to_string();
    let mut metrics_out: Option<String> = None;
    let mut flight_flag = false;
    let mut gate: Option<f64> = None;
    let mut which: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return;
            }
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--metrics-out needs a directory path");
                    std::process::exit(2);
                }));
            }
            "--flight-recorder" => flight_flag = true,
            "--disasm-backend" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                if !janitizer_analysis::set_disasm_backend(&name) {
                    eprintln!("unknown disassembly backend `{name}`; registered backends:");
                    for b in janitizer_analysis::backends() {
                        eprintln!("  {:<12} {}", b.name(), b.describe());
                    }
                    std::process::exit(2);
                }
                eprintln!("disassembly backend: {name}");
            }
            "--gate" => {
                i += 1;
                gate = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--gate needs a ratio (e.g. 1.5)");
                    std::process::exit(2);
                }));
            }
            "--store" => {
                i += 1;
                store_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--store needs a directory path");
                    std::process::exit(2);
                }));
            }
            "--store-kill-after" => {
                i += 1;
                store_kill_after =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--store-kill-after needs a commit count");
                        std::process::exit(2);
                    }));
            }
            "--quarantine-limit" => {
                i += 1;
                quarantine_limit =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--quarantine-limit needs an entry count");
                        std::process::exit(2);
                    }));
            }
            "--serve-clients" => {
                i += 1;
                serve_cfg.clients =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--serve-clients needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--serve-requests" => {
                i += 1;
                serve_cfg.requests =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--serve-requests needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--serve-seed" => {
                i += 1;
                serve_cfg.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--serve-seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--serve-budget" => {
                i += 1;
                serve_cfg.budget =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--serve-budget needs a work-unit count");
                        std::process::exit(2);
                    });
            }
            "--reports" => {
                i += 1;
                reports_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--reports needs a directory path");
                    std::process::exit(2);
                }));
            }
            "--juliet-limit" => {
                i += 1;
                juliet_limit = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(
                    || {
                        eprintln!("--juliet-limit needs a positive integer");
                        std::process::exit(2);
                    },
                ));
            }
            "--inject-faults" => {
                i += 1;
                inject = Some(
                    args.get(i)
                        .and_then(|s| parse_inject(s))
                        .unwrap_or_else(|| {
                            eprintln!(
                                "--inject-faults needs `seed=N,rate=R` (rate in [0,1], default 1)"
                            );
                            std::process::exit(2);
                        }),
                );
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a number");
                        std::process::exit(2);
                    });
            }
            "--threads" => {
                i += 1;
                threads_flag = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                }));
            }
            "--profile" => profile_flag = true,
            "--no-traces" => set_traces(false),
            "--trace-threshold" => {
                i += 1;
                let t = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--trace-threshold needs a positive integer");
                    std::process::exit(2);
                });
                set_trace_threshold(t);
            }
            "--top" => {
                i += 1;
                top = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--top needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory path");
                    std::process::exit(2);
                });
            }
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    // `profile <figure>` and `explain <figure|workload>` are extracted
    // before figure selection so their targets don't double as figure
    // requests.
    let mut profile_target: Option<String> = None;
    if let Some(pos) = which.iter().position(|w| w == "profile") {
        let end = (pos + 2).min(which.len());
        let mut taken: Vec<String> = which.drain(pos..end).collect();
        profile_target = Some(if taken.len() == 2 {
            taken.pop().expect("two elements")
        } else {
            "fig7".to_string()
        });
    }
    let mut explain_target: Option<String> = None;
    let mut explain_diff: Option<(String, String)> = None;
    let mut explain_trend = false;
    if let Some(pos) = which.iter().position(|w| w == "explain") {
        match which.get(pos + 1).map(String::as_str) {
            Some("diff") => {
                let end = (pos + 4).min(which.len());
                let taken: Vec<String> = which.drain(pos..end).collect();
                if taken.len() != 4 {
                    eprintln!("explain diff needs two bundle paths: explain diff <A> <B>");
                    std::process::exit(2);
                }
                explain_diff = Some((taken[2].clone(), taken[3].clone()));
            }
            Some("trend") => {
                which.drain(pos..pos + 2);
                explain_trend = true;
            }
            _ => {
                let end = (pos + 2).min(which.len());
                let mut taken: Vec<String> = which.drain(pos..end).collect();
                explain_target = Some(if taken.len() == 2 {
                    taken.pop().expect("two elements")
                } else {
                    "fig14".to_string()
                });
            }
        }
    }
    if which.is_empty()
        && profile_target.is_none()
        && explain_target.is_none()
        && explain_diff.is_none()
        && !explain_trend
    {
        which.push("all".into());
    }
    // `explain diff` and `explain trend` are pure artifact readers — no
    // guest world, no figure runs. Handle them before the build.
    if let Some((a, b)) = &explain_diff {
        std::process::exit(run_explain_diff(a, b, top, gate));
    }
    if explain_trend {
        std::process::exit(run_explain_trend("BENCH_history.jsonl"));
    }
    // Reject unknown flags and figure names up front, before the (slow)
    // guest world is built for nothing.
    const KNOWN: &[&str] = &[
        "all", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "rules",
        "soundness", "disasm", "report", "serve", "gauntlet",
    ];
    let mut prev_takes_arg = false;
    for w in &which {
        let is_subcmd_target =
            std::mem::replace(&mut prev_takes_arg, w == "disasm" || w == "report");
        if !is_subcmd_target && !KNOWN.contains(&w.as_str()) {
            eprintln!("unknown argument `{w}` (expected one of: {})", KNOWN.join(", "));
            std::process::exit(2);
        }
    }
    let all = which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);
    let mut failures = 0u32;

    if threads_flag > 0 {
        set_threads(threads_flag);
    }
    if profile_flag {
        set_profiling(true);
    }
    if trace.is_some() {
        telemetry::install(Box::<telemetry::InMemoryCollector>::default());
        telemetry::set_enabled(true);
    }
    if flight_flag {
        // Black-box event ring: always-on once armed, dumps to the
        // metrics directory (or `--out`) on panic and on degradation
        // trips. Observation-only — figure bytes are identical with the
        // recorder on or off (test-enforced).
        let dump_dir = metrics_out.clone().unwrap_or_else(|| out_dir.clone());
        telemetry::flight::arm(telemetry::flight::DEFAULT_CAPACITY);
        telemetry::flight::arm_panic_dump(std::path::Path::new(&dump_dir));
        eprintln!("flight recorder armed (black box dumps to {dump_dir})");
    }

    eprintln!("building guest world (scale {scale}) ...");
    let mut ew = build_eval_world(scale);
    ew.inject = inject;
    // Persistent rule store: figure and serve runs consult it before
    // analyzing and commit fresh analyses back. Store failures degrade
    // to in-process analysis — never an error — and all store
    // diagnostics go to stderr so figure stdout/results stay
    // byte-identical with the store on or off.
    let mut rule_store: Option<std::sync::Arc<janitizer_store::RuleStore>> = None;
    if let Some(dir) = &store_dir {
        let failures = janitizer_store::FailurePlan {
            transient_write_failures: 0,
            crash_after_commits: store_kill_after,
        };
        match janitizer_store::RuleStore::open_with(
            dir,
            janitizer_store::RetryPolicy::default(),
            failures,
        ) {
            Ok(st) => {
                let st = std::sync::Arc::new(st);
                let recovered = st.stats().recovered;
                if recovered > 0 {
                    eprintln!(
                        "store: recovered from an interrupted commit at {dir} \
                         (recovered={recovered})"
                    );
                }
                ew.cache =
                    std::sync::Arc::new(janitizer_core::RuleCache::with_store(st.clone()));
                rule_store = Some(st);
            }
            Err(e) => {
                eprintln!("store: failed to open {dir} ({e}); continuing without a store");
            }
        }
    } else if store_kill_after.is_some() {
        eprintln!("--store-kill-after has no effect without --store");
    }
    if let Some(fi) = inject {
        eprintln!(
            "fault injection ON: seed={} rate={} (rule files take the untrusted load path)",
            fi.seed, fi.rate
        );
    }
    let mut per_figure: Vec<(String, f64)> = Vec::new();

    for name in ["fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "fig14"] {
        if want(name) {
            let t0 = std::time::Instant::now();
            let r = run_figure(&ew, name).expect("known figure");
            per_figure.push((name.to_string(), t0.elapsed().as_secs_f64() * 1e3));
            print!("{}", r.render());
            persist(name, &r, &mut failures);
        }
    }
    if want("fig10") {
        let t0 = std::time::Instant::now();
        let dir = reports_dir.as_ref().map(std::path::Path::new);
        let r = fig10_with(&ew.world.store, dir, juliet_limit);
        per_figure.push(("fig10".to_string(), t0.elapsed().as_secs_f64() * 1e3));
        print!("{}", r.render());
        println!("JASan FNs by category: {:?}", r.jasan_fn_by_category);
        if let Some(d) = dir {
            let n = std::fs::read_dir(d).map(|it| it.count()).unwrap_or(0);
            eprintln!("{n} report file(s) written to {}", d.display());
        }
    }
    if profile_flag {
        // Drain the figure runs' profiles now, before the `all` block's
        // speedup re-runs would double-count fig14's cells.
        let profiles = take_profiles();
        if profiles.is_empty() {
            eprintln!("--profile: no profiled runs (no figure requested?)");
        } else {
            println!("\n== overhead budgets ==");
            let target = if all { "all" } else { "figures" };
            write_explain_artifacts(target, top, &out_dir, &profiles, &mut failures);
        }
    }
    if want("rules") {
        let mut total = 0usize;
        if let Err(e) = std::fs::create_dir_all("results/rules") {
            eprintln!("error: failed to create results/rules: {e}");
            failures += 1;
        }
        for name in ew.world.store.names() {
            let image = ew.world.store.get(name).expect("listed");
            let file = janitizer_core::analyze_statically(&image, &janitizer_jasan::Jasan::hybrid());
            let bytes = file.to_bytes();
            total += file.rules.len();
            let path = format!("results/rules/{name}.jrul");
            match write_atomic(&path, &bytes) {
                Ok(()) => println!(
                    "{name:<16} {:>6} rules ({:>8} bytes) -> {path}",
                    file.rules.len(),
                    bytes.len()
                ),
                Err(e) => {
                    eprintln!("error: failed to write {path}: {e}");
                    failures += 1;
                }
            }
        }
        println!("total: {total} rewrite rules");
    }
    if which.iter().any(|w| w == "report") {
        let case_id: usize = which
            .iter()
            .skip_while(|w| *w != "report")
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        match juliet_report(&ew.world.store, case_id) {
            Some(reports) if !reports.is_empty() => {
                for rep in &reports {
                    print!("{}", rep.render_text());
                    if let Some(dir) = reports_dir.as_ref().map(std::path::Path::new) {
                        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                            write_atomic(
                                dir.join(format!("{}.json", rep.id)),
                                rep.to_json().render_pretty().as_bytes(),
                            )
                        }) {
                            eprintln!("error: failed to write report JSON: {e}");
                            failures += 1;
                        }
                    }
                }
            }
            Some(_) => println!("case {case_id}: no violation detected"),
            None => {
                eprintln!("unknown Juliet case `{case_id}` (see fig10 suite)");
                failures += 1;
            }
        }
    }
    if which.iter().any(|w| w == "disasm") {
        let target = which
            .iter()
            .skip_while(|w| *w != "disasm")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "gcc".into());
        match ew.world.store.get(&target) {
            Some(image) => {
                let cfg = janitizer_analysis::analyze_module(&image);
                print!("{}", janitizer_analysis::disassemble(&image, &cfg));
            }
            None => eprintln!("unknown module `{target}`"),
        }
    }
    if want("soundness") {
        println!("== 6.2.2 soundness: false positives on benign runs ==");
        println!("{:<12}{:>14}{:>10}", "benchmark", "Lockdown(S)", "JCFI");
        for (name, ld, jc) in soundness(&ew) {
            println!("{name:<12}{ld:>14}{jc:>10}");
        }
    }
    if which.iter().any(|w| w == "gauntlet") {
        // Hostile-module gauntlet: every hostility class analyzed and run
        // under each registered disassembly backend. A failing cell (a
        // panic, an engine error, or a lost detection) fails the process.
        let r = hostile_gauntlet();
        print!("{}", r.render());
        let write_all = || -> std::io::Result<()> {
            std::fs::create_dir_all("results")?;
            write_atomic("results/hostile-gauntlet.csv", r.to_csv().as_bytes())?;
            write_atomic("results/hostile-gauntlet.json", r.to_json().as_bytes())?;
            Ok(())
        };
        match write_all() {
            Ok(()) => eprintln!("gauntlet results written to results/hostile-gauntlet.{{csv,json}}"),
            Err(e) => {
                eprintln!("error: failed to write results/hostile-gauntlet.{{csv,json}}: {e}");
                failures += 1;
            }
        }
        if !r.all_ok() {
            eprintln!("gauntlet: one or more cells failed their oracle");
            failures += 1;
        }
    }
    if which.iter().any(|w| w == "serve") {
        // Supervised analysis service: deterministic multi-client
        // simulation with byte-parity verification against fresh
        // in-process analyses. The summary is deterministic (stdout);
        // scheduling-dependent supervision counters go to stderr.
        let run = serve_sim(&ew, &serve_cfg);
        print!("{}", run.summary);
        let (stats, prov) = (run.stats, run.provenance);
        eprintln!(
            "serve: served={} degraded={} timeouts={} panics_isolated={} retries={} \
             store_failures={} peak_in_flight={} from_memory={} from_store={} from_analysis={}",
            stats.served,
            stats.degraded,
            stats.timeouts,
            stats.panics_isolated,
            stats.retries,
            stats.store_failures,
            stats.peak_in_flight,
            prov.memory,
            prov.store,
            prov.analyzed
        );
        let parity_bad = run.summary.contains("MISMATCH");
        let json = serve_summary_json(&serve_cfg, &stats, &prov, parity_bad);
        let path = format!("{out_dir}/serve-summary.json");
        match std::fs::create_dir_all(&out_dir)
            .and_then(|()| write_atomic(&path, json.as_bytes()))
        {
            Ok(()) => eprintln!("serve summary written to {path}"),
            Err(e) => {
                eprintln!("error: failed to write {path}: {e}");
                failures += 1;
            }
        }
        if let Some(dir) = &metrics_out {
            // Live-metrics snapshot: the deterministic serve-metrics
            // document (byte-identical across --threads), the host-side
            // latency/queue document, and the OpenMetrics exposition.
            let write_all = || -> std::io::Result<()> {
                std::fs::create_dir_all(dir)?;
                write_atomic(
                    format!("{dir}/serve-metrics.json"),
                    run.metrics_json.as_bytes(),
                )?;
                write_atomic(
                    format!("{dir}/serve-metrics-host.json"),
                    run.host_metrics_json.as_bytes(),
                )?;
                write_atomic(format!("{dir}/serve-metrics.om"), run.openmetrics.as_bytes())?;
                Ok(())
            };
            match write_all() {
                Ok(()) => eprintln!("serve metrics written to {dir}/serve-metrics.{{json,om}}"),
                Err(e) => {
                    eprintln!("error: failed to write serve metrics under {dir}: {e}");
                    failures += 1;
                }
            }
            if telemetry::flight::armed() {
                match telemetry::flight::dump_to(std::path::Path::new(dir), "snapshot") {
                    Some(p) => eprintln!("flight black box written to {}", p.display()),
                    None => eprintln!("error: failed to write flight black box under {dir}"),
                }
            }
        }
        if parity_bad {
            eprintln!("serve: byte-parity violation detected");
            failures += 1;
        }
    }

    if all {
        // Measured serial-vs-parallel speedup: re-run fig14 at one thread
        // against the figure's recorded parallel wall time. The rule
        // cache is warm for both sides, so the ratio isolates the thread
        // fan-out (the cache's own win shows up in the hit counters).
        let serial_parallel = if threads() > 1 {
            let t0 = std::time::Instant::now();
            let _ = fig14(&ew);
            let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
            set_threads(1);
            let t1 = std::time::Instant::now();
            let _ = fig14(&ew);
            let serial_ms = t1.elapsed().as_secs_f64() * 1e3;
            set_threads(threads_flag);
            Some((serial_ms, parallel_ms))
        } else {
            None
        };
        match write_bench(&per_figure, ew.cache.stats(), serial_parallel) {
            Ok(()) => eprintln!("benchmark summary written to BENCH_eval.json"),
            Err(e) => {
                eprintln!("error: failed to write BENCH_eval.json: {e}");
                failures += 1;
            }
        }
        let store_stats = rule_store.as_ref().map(|st| st.stats());
        match append_bench_history(&per_figure, ew.cache.stats(), store_stats) {
            Ok(()) => eprintln!("benchmark history appended to BENCH_history.jsonl"),
            Err(e) => {
                eprintln!("error: failed to append BENCH_history.jsonl: {e}");
                failures += 1;
            }
        }
    }

    if let Some(target) = &explain_target {
        // `explain <figure|workload>`: run the target with profiling
        // armed and export the three overhead-attribution artifacts.
        set_profiling(true);
        let _ = take_profiles(); // cover exactly this target's runs
        if let Some(r) = run_figure(&ew, target) {
            print!("{}", r.render());
        } else if let Some(idx) = ew
            .world
            .workloads
            .iter()
            .position(|w| w.name == target.as_str())
        {
            // One workload under the representative tool configurations.
            const EXPLAIN_CONFIGS: &[ToolConfig] = &[
                ToolConfig::NullClient,
                ToolConfig::Valgrind,
                ToolConfig::JasanDyn,
                ToolConfig::JasanHybrid,
                ToolConfig::JcfiHybrid,
                ToolConfig::BinCfi,
            ];
            for cfg in EXPLAIN_CONFIGS {
                if run_config(&ew, idx, *cfg).is_none() {
                    eprintln!("explain: {} is inapplicable to `{target}`", cfg.label());
                }
            }
        } else {
            eprintln!(
                "explain: unknown target `{target}` (expected fig7..fig14 except fig10, \
                 or a workload name)"
            );
            std::process::exit(2);
        }
        set_profiling(profile_flag);
        let profiles = take_profiles();
        println!("\n== overhead budgets ({target}) ==");
        write_explain_artifacts(target, top, &out_dir, &profiles, &mut failures);
    }

    if let Some(target) = &profile_target {
        // Fresh collector so the profile covers exactly this figure —
        // unless --trace is live, whose accumulated data must survive.
        if trace.is_none() {
            telemetry::install(Box::<telemetry::InMemoryCollector>::default());
        }
        telemetry::set_enabled(true);
        let r = run_figure(&ew, target).unwrap_or_else(|| {
            eprintln!("profile: unknown figure `{target}` (fig7..fig14, except fig10)");
            std::process::exit(2);
        });
        telemetry::set_enabled(trace.is_some());
        print!("{}", r.render());
        persist(target, &r, &mut failures);
        let reg = telemetry::snapshot();
        let json_path = format!("results/profile-{target}.json");
        let folded_path = format!("results/profile-{target}.folded");
        match write_profile(&reg, &json_path, &folded_path) {
            Ok(()) => eprintln!("profile written to {json_path} and {folded_path}"),
            Err(e) => {
                eprintln!("error: failed to write profile: {e}");
                failures += 1;
            }
        }
        println!("\n== cycle attribution ({target}) ==");
        print!("{}", telemetry::export::to_summary(&reg));
    }

    if let Some(path) = &trace {
        telemetry::set_enabled(false);
        let reg = telemetry::snapshot();
        match write_atomic(path, telemetry::export::to_json(&reg).as_bytes()) {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("error: failed to write trace {path}: {e}");
                failures += 1;
            }
        }
    }

    if inject.is_some() {
        let rows = degraded_summary();
        let total: u64 = rows.iter().map(|(_, _, n)| n).sum();
        let modules: std::collections::BTreeSet<&str> =
            rows.iter().map(|(m, _, _)| m.as_str()).collect();
        println!(
            "degraded: {total} module load(s) fell back to dynamic-only mode across {} module(s)",
            modules.len()
        );
        for (module, reason, n) in &rows {
            println!("  {module}: {reason} x{n}");
        }
    }

    if let Some(st) = &rule_store {
        eprintln!("{}", janitizer_store::stats_line(&st.stats()));
        let (files, bytes) = st.quarantine_usage();
        if files > 0 || quarantine_limit.is_some() {
            eprintln!("store quarantine: {files} entr{} ({bytes} bytes)",
                if files == 1 { "y" } else { "ies" });
        }
        if let Some(limit) = quarantine_limit {
            let removed = st.prune_quarantine(limit);
            if removed > 0 {
                eprintln!("store quarantine: pruned {removed} oldest past the limit of {limit}");
            }
        }
    } else if quarantine_limit.is_some() {
        eprintln!("--quarantine-limit has no effect without --store");
    }

    if failures > 0 {
        eprintln!("{failures} result file(s) could not be written");
        std::process::exit(1);
    }
}
