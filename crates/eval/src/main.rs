//! `janitizer-eval`: regenerates every table and figure of the paper.
//!
//! ```text
//! janitizer-eval [--scale S] [fig7|...|fig14|soundness|rules|disasm <module>|all]
//! ```
//!
//! Results print as aligned tables and are also written as CSV and JSON
//! under `results/`. The `rules` subcommand additionally materializes the
//! per-module rewrite-rule files the static analyzer produces (paper
//! §3.3.1: rules "are recorded in separate files for each binary
//! module").

use janitizer_eval::*;
use std::io::Write as _;

fn write_results(name: &str, fig: &janitizer_eval::FigResult) {
    let _ = std::fs::create_dir_all("results");
    if let Ok(mut f) = std::fs::File::create(format!("results/{name}.csv")) {
        let _ = f.write_all(fig.to_csv().as_bytes());
    }
    if let Ok(mut f) = std::fs::File::create(format!("results/{name}.json")) {
        let _ = f.write_all(fig.to_json().as_bytes());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut which: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a number");
                        std::process::exit(2);
                    });
            }
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let all = which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    eprintln!("building guest world (scale {scale}) ...");
    let ew = build_eval_world(scale);

    if want("fig7") {
        let r = fig7(&ew);
        print!("{}", r.render());
        write_results("fig7", &r);
    }
    if want("fig8") {
        let r = fig8(&ew);
        print!("{}", r.render());
        write_results("fig8", &r);
    }
    if want("fig9") {
        let r = fig9(&ew);
        print!("{}", r.render());
        write_results("fig9", &r);
    }
    if want("fig10") {
        let r = fig10(&ew.world.store);
        print!("{}", r.render());
        println!("JASan FNs by category: {:?}", r.jasan_fn_by_category);
    }
    if want("fig11") {
        let r = fig11(&ew);
        print!("{}", r.render());
        write_results("fig11", &r);
    }
    if want("fig12") {
        let r = fig12(&ew);
        print!("{}", r.render());
        write_results("fig12", &r);
    }
    if want("fig13") {
        let r = fig13(&ew);
        print!("{}", r.render());
        write_results("fig13", &r);
    }
    if want("fig14") {
        let r = fig14(&ew);
        print!("{}", r.render());
        write_results("fig14", &r);
    }
    if want("rules") {
        let _ = std::fs::create_dir_all("results/rules");
        let mut total = 0usize;
        for name in ew.world.store.names() {
            let image = ew.world.store.get(name).expect("listed");
            let file = janitizer_core::analyze_statically(&image, &janitizer_jasan::Jasan::hybrid());
            let bytes = file.to_bytes();
            total += file.rules.len();
            let path = format!("results/rules/{name}.jrul");
            if let Ok(mut f) = std::fs::File::create(&path) {
                let _ = f.write_all(&bytes);
            }
            println!(
                "{name:<16} {:>6} rules ({:>8} bytes) -> {path}",
                file.rules.len(),
                bytes.len()
            );
        }
        println!("total: {total} rewrite rules");
    }
    if which.iter().any(|w| w == "disasm") {
        let target = which
            .iter()
            .skip_while(|w| *w != "disasm")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "gcc".into());
        match ew.world.store.get(&target) {
            Some(image) => {
                let cfg = janitizer_analysis::analyze_module(&image);
                print!("{}", janitizer_analysis::disassemble(&image, &cfg));
            }
            None => eprintln!("unknown module `{target}`"),
        }
    }
    if want("soundness") {
        println!("== 6.2.2 soundness: false positives on benign runs ==");
        println!("{:<12}{:>14}{:>10}", "benchmark", "Lockdown(S)", "JCFI");
        for (name, ld, jc) in soundness(&ew) {
            println!("{name:<12}{ld:>14}{jc:>10}");
        }
    }
}
