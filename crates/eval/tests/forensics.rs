//! Forensic-report acceptance tests (fig10 + `report` path): reporting
//! is observation-only (verdicts and rendered figure bytes identical
//! with it on or off), every detection yields a report with a resolved
//! backtrace frame, a faulting-instruction window, tool context and an
//! execution trail, and the text and JSON renderings agree on all
//! addresses.

use janitizer_core::ToolContext;
use janitizer_eval::{build_eval_world, fig10_with, juliet_report};
use std::path::PathBuf;

/// Fresh per-test scratch directory under the target-local temp root.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("janitizer-forensics-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fig10_reports_are_observation_only_and_well_formed() {
    let ew = build_eval_world(0.05);
    let dir = scratch("fig10");

    let off = fig10_with(&ew.world.store, None, Some(6));
    let on = fig10_with(&ew.world.store, Some(&dir), Some(6));

    // Byte parity: enabling report emission changes nothing in the
    // figure — capture charges no guest cycles.
    assert_eq!(off.render(), on.render(), "reporting changed figure bytes");
    assert_eq!(off.jasan_fn_by_category, on.jasan_fn_by_category);

    // Every JASan detection wrote a report pair.
    assert!(on.jasan.true_positives >= 1, "subset contains detections");
    let files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("reports dir created")
        .map(|e| e.unwrap().path())
        .collect();
    let json_files: Vec<&PathBuf> = files
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    let txt_count = files
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .count();
    assert!(!json_files.is_empty(), "at least one JSON report");
    assert_eq!(json_files.len(), txt_count, "reports come in .txt/.json pairs");

    // Schema shape: the stable envelope keys are present in every file.
    for p in &json_files {
        let body = std::fs::read_to_string(p).unwrap();
        for key in [
            "\"schema\": \"janitizer.diag.report/v1\"",
            "\"id\"",
            "\"kind\"",
            "\"pc\"",
            "\"backtrace\"",
            "\"disasm\"",
            "\"registers\"",
            "\"trail\"",
            "\"context\"",
        ] {
            assert!(body.contains(key), "{} missing {key}", p.display());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn juliet_report_carries_full_forensic_context() {
    let ew = build_eval_world(0.05);
    let reports = juliet_report(&ew.world.store, 0).expect("case 0 exists");
    assert!(!reports.is_empty(), "case 0 bad variant violates");
    let rep = &reports[0];

    assert_eq!(rep.tool, "jasan");
    assert!(rep.id.starts_with("jasan-case-0000-"), "stable id, got {}", rep.id);

    // Backtrace: at least one frame resolved to module!symbol+offset.
    assert!(
        rep.backtrace.iter().any(|f| f.is_resolved()),
        "no resolved frame in {:?}",
        rep.backtrace
    );
    assert_eq!(rep.backtrace[0].addr, rep.pc, "frame 0 is the faulting pc");

    // Disassembly window contains exactly one fault-marked line, at pc.
    let faults: Vec<_> = rep.disasm.iter().filter(|l| l.fault).collect();
    assert_eq!(faults.len(), 1, "one faulting instruction");
    assert_eq!(faults[0].addr, rep.pc);

    // JASan context with a shadow window around the access.
    let ToolContext::Jasan(j) = &rep.context else {
        panic!("expected JASan context, got {:?}", rep.context);
    };
    assert!(!j.rows.is_empty(), "shadow window captured");
    assert!(j.access_size > 0);

    // Execution trail is present and symbolized.
    assert!(!rep.trail.is_empty(), "execution trail captured");
    assert!(rep.trail.iter().all(|f| f.module.is_some()), "trail frames in modules");

    // Text and JSON agree on every address: the pc and each backtrace
    // frame render through one shared formatter.
    let text = rep.render_text();
    let json = rep.to_json().render_pretty();
    let pc_str = format!("{:#010x}", rep.pc);
    assert!(text.contains(&pc_str) && json.contains(&pc_str));
    for f in &rep.backtrace {
        let a = format!("{:#010x}", f.addr);
        assert!(text.contains(&a) && json.contains(&a), "address {a} diverges");
    }
    assert!(text.starts_with("==janitizer== ERROR: heap-buffer-overflow"), "{text}");
    assert!(text.contains("Faulting instruction window:"));
    assert!(text.contains("JASan shadow map around"));
    assert!(text.contains("Execution trail (oldest block first):"));
}
