//! Disassembly backends are observation-free on benign modules: the
//! evidence and cet-anchor backends find no contradicting facts there,
//! so figure output and per-module rule bytes are identical to the
//! default hybrid backend — at any thread count. On hostile modules the
//! evidence backend degrades per region, and the flight recorder logs
//! one `disasm.degraded` event per low-confidence region. The backend
//! selector and thread count are process-wide, so these tests serialize
//! on a mutex.

use janitizer_analysis::{backends, set_disasm_backend, RegionCause};
use janitizer_core::{analyze_statically, run_hybrid, HybridOptions};
use janitizer_eval::{
    build_eval_world, fig11, fig12, fig13, fig14, fig7, fig8, fig9, set_threads, EvalWorld,
    FigResult,
};
use janitizer_jasan::{Jasan, RT_MODULE};
use janitizer_telemetry::flight;
use janitizer_vm::LoadOptions;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn all_figs(ew: &EvalWorld) -> Vec<FigResult> {
    [fig7, fig8, fig9, fig11, fig12, fig13, fig14]
        .iter()
        .map(|f| f(ew))
        .collect()
}

/// Renders every figure under the given backend at the given thread
/// count, with a fresh world (cold rule cache) so every analysis really
/// runs under the requested backend.
fn figures_with(backend: &str, threads: usize) -> Vec<FigResult> {
    assert!(set_disasm_backend(backend), "unknown backend {backend}");
    set_threads(threads);
    let ew = build_eval_world(0.05);
    let figs = all_figs(&ew);
    set_threads(1);
    set_disasm_backend("hybrid");
    figs
}

#[test]
fn benign_figures_identical_across_backends_and_threads() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 4] {
        let reference = figures_with("hybrid", threads);
        for b in backends() {
            if b.name() == "hybrid" {
                continue;
            }
            let other = figures_with(b.name(), threads);
            for (a, o) in reference.iter().zip(other.iter()) {
                assert_eq!(
                    a.render(),
                    o.render(),
                    "{} (threads {threads}, backend {}): render diverged",
                    a.title,
                    b.name()
                );
                assert_eq!(
                    a.to_csv(),
                    o.to_csv(),
                    "{} (threads {threads}, backend {}): CSV diverged",
                    a.title,
                    b.name()
                );
                assert_eq!(
                    a.to_json(),
                    o.to_json(),
                    "{} (threads {threads}, backend {}): JSON diverged",
                    a.title,
                    b.name()
                );
            }
        }
    }
}

#[test]
fn benign_rule_bytes_identical_across_backends() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ew = build_eval_world(0.05);
    for name in ew.world.store.names() {
        let image = ew.world.store.get(name).expect("listed module");
        let mut reference: Option<Vec<u8>> = None;
        for b in backends() {
            assert!(set_disasm_backend(b.name()));
            let bytes = analyze_statically(&image, &Jasan::hybrid()).to_bytes();
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(
                    r,
                    &bytes,
                    "{name}: rule bytes diverged under backend {}",
                    b.name()
                ),
            }
        }
    }
    set_disasm_backend("hybrid");
}

#[test]
fn flight_records_one_disasm_degraded_event_per_low_confidence_region() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let m = janitizer_workloads::hostile_suite()
        .into_iter()
        .find(|m| m.class == "data-island")
        .expect("data-island class");
    let evidence = backends()
        .into_iter()
        .find(|b| b.name() == "evidence")
        .expect("evidence backend");
    let res = evidence.analyze(&m.image);
    let low: Vec<_> = res
        .degraded
        .iter()
        .filter(|r| r.cause == RegionCause::LowConfidence)
        .collect();
    assert!(!low.is_empty(), "data-island must degrade at least one region");

    assert!(set_disasm_backend("evidence"));
    flight::arm(flight::DEFAULT_CAPACITY);
    let mut store = janitizer_workloads::library_base();
    let module = m.name;
    store.add(m.image);
    let opts = HybridOptions {
        load: LoadOptions {
            preload: vec![RT_MODULE.into()],
            ..LoadOptions::default()
        },
        ..HybridOptions::default()
    };
    let run = run_hybrid(&store, module, Jasan::hybrid(), &opts).expect("hostile run");
    assert_eq!(run.outcome.code(), Some(0), "data-island must run benignly");
    let dump = flight::dump_json("test");
    flight::disarm();
    set_disasm_backend("hybrid");

    let events = dump.matches("\"disasm.degraded\"").count();
    assert_eq!(
        events,
        low.len(),
        "one disasm.degraded flight event per low-confidence region"
    );
    assert!(
        dump.contains(module),
        "flight event names the degraded module"
    );
}
