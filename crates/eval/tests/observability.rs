//! Observability is observation-only, and its artifacts are
//! deterministic where they claim to be:
//!
//! * the `janitizer.serve-metrics/v1` snapshot (and its OpenMetrics
//!   rendering) is byte-identical run-to-run and at any `--threads`
//!   setting — client scheduling may reorder work but never the totals;
//! * figure results are byte-identical with the flight recorder armed
//!   or disarmed — the black box records, it never steers;
//! * `explain diff` on the committed fig14 bundles (the PR7-era
//!   baseline fixture vs. the current artifact) reproduces the known
//!   dispatch improvement and ranks the trace-layer wins;
//! * the `BENCH_history.jsonl` trend reader tolerates pre-schema lines.
//!
//! The thread-count and flight-recorder switches are process-wide, so
//! these tests serialize on a mutex.

use janitizer_eval::{
    bench_trend, build_eval_world, fig13, fig14, serve_sim, set_threads, ServeSimConfig,
};
use janitizer_profile::diff::{diff_bundles, BundleSummary};
use janitizer_telemetry::flight;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn serve_metrics_snapshot_is_deterministic_across_threads() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = ServeSimConfig::default();
    let mut snapshots: Vec<(String, String, String)> = Vec::new();
    for threads in [1usize, 4, 4] {
        set_threads(threads);
        let ew = build_eval_world(0.05);
        let run = serve_sim(&ew, &cfg);
        assert!(
            run.metrics_json.contains("janitizer.serve-metrics/v1"),
            "snapshot carries its schema tag"
        );
        assert!(
            run.host_metrics_json.contains("janitizer.serve-metrics-host/v1"),
            "host snapshot carries its schema tag"
        );
        assert!(run.openmetrics.ends_with("# EOF\n"), "exposition is terminated");
        // Provenance totals are deterministic (exactly-once analysis per
        // key) and must account for every request.
        let total = run.provenance.memory + run.provenance.store + run.provenance.analyzed;
        assert_eq!(total, (cfg.clients * cfg.requests) as u64);
        snapshots.push((run.summary, run.metrics_json, run.openmetrics));
    }
    set_threads(1);
    for pair in snapshots.windows(2) {
        assert_eq!(pair[0].0, pair[1].0, "serve summary diverged");
        assert_eq!(pair[0].1, pair[1].1, "serve-metrics.json diverged");
        assert_eq!(pair[0].2, pair[1].2, "OpenMetrics exposition diverged");
    }
}

#[test]
fn figures_are_byte_identical_with_flight_recorder_armed() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let run_pair = |armed: bool, threads: usize| {
        if armed {
            flight::arm(flight::DEFAULT_CAPACITY);
        } else {
            flight::disarm();
        }
        set_threads(threads);
        let ew = build_eval_world(0.05);
        let figs = [fig13(&ew), fig14(&ew)];
        flight::disarm();
        set_threads(1);
        figs
    };
    for threads in [1usize, 4] {
        let off = run_pair(false, threads);
        let on = run_pair(true, threads);
        for (a, b) in off.iter().zip(on.iter()) {
            assert_eq!(
                a.render(),
                b.render(),
                "{} (threads {threads}): render diverged",
                a.title
            );
            assert_eq!(a.to_csv(), b.to_csv(), "{} (threads {threads}): CSV diverged", a.title);
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{} (threads {threads}): JSON diverged",
                a.title
            );
        }
    }
    // Rule bytes too: the static analyzer's serialized output is
    // unchanged by the recorder.
    let ew = build_eval_world(0.05);
    for name in ew.world.store.names() {
        let image = ew.world.store.get(name).expect("listed");
        flight::arm(flight::DEFAULT_CAPACITY);
        let armed =
            janitizer_core::analyze_statically(&image, &janitizer_jasan::Jasan::hybrid())
                .to_bytes();
        flight::disarm();
        let plain =
            janitizer_core::analyze_statically(&image, &janitizer_jasan::Jasan::hybrid())
                .to_bytes();
        assert_eq!(armed, plain, "{name}: rule bytes diverged under the recorder");
    }
}

#[test]
fn explain_diff_reproduces_the_committed_dispatch_improvement() {
    let baseline = include_str!("fixtures/explain-fig14-pr7.v2.json");
    let current = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/explain-fig14.v2.json"
    ))
    .expect("committed fig14 explain artifact");
    let (diff, report) = diff_bundles(baseline, &current, 5).expect("both bundles parse");

    let gems = diff
        .cells
        .iter()
        .find(|c| c.workload == "GemsFDTD" && c.config == "jasan-hybrid")
        .expect("GemsFDTD cell present in both bundles");
    let dispatch = gems.cycles["dispatch"];
    assert_eq!(
        (dispatch.before, dispatch.after),
        (1408, 814),
        "the PR8 trace layer cut GemsFDTD dispatch cycles 1408 -> 814"
    );
    assert!(dispatch.signed() < 0);
    // The trace layer's new engine counters surface as fresh deltas...
    assert!(gems.engine["chained_transfers"].after > 0);
    assert!(gems.engine["checks_fused"].after > 0);
    assert_eq!(gems.engine["chained_transfers"].before, 0);
    // ...and the chained/fused functions rank as improvements, with no
    // regressing site anywhere in the bundle.
    assert!(!gems.improving_functions().is_empty());
    for cell in &diff.cells {
        assert!(
            cell.regressing_sites().is_empty(),
            "{}/{}: unexpected site regression",
            cell.workload,
            cell.config
        );
    }
    assert!(diff.worst_total_ratio() <= 1.0, "PR8 regressed no cell total");
    assert!(report.contains("1408 -> 814"), "report shows the delta:\n{report}");
    assert!(report.contains("top improving functions"));
    // The reverse diff is a regression and would trip a 5% gate.
    let (reverse, _) = diff_bundles(&current, baseline, 5).expect("parse");
    assert!(reverse.worst_total_ratio() > 1.05);
}

#[test]
fn bundle_parse_accepts_both_committed_artifacts() {
    let a = BundleSummary::parse(include_str!("fixtures/explain-fig14-pr7.v2.json")).unwrap();
    assert_eq!(a.target, "fig14");
    assert_eq!(a.cells.len(), 28, "one cell per SPEC workload");
    for cell in a.cells.values() {
        assert!(cell.cycles.contains_key("total"));
        assert!(!cell.functions.is_empty());
    }
}

#[test]
fn bench_trend_tolerates_pre_schema_lines() {
    let history = "\
{\"date\":\"2026-08-01\",\"threads\":1,\"figures\":8,\"total_wall_ms\":200.0}\n\
not json at all\n\
{\"schema\":\"janitizer.bench-history/v1\",\"date\":\"2026-08-02\",\"threads\":1,\
\"total_wall_ms\":100.0,\"figure_wall_ms\":{\"fig7\":60.0,\"fig8\":40.0}}\n\
{\"schema\":\"janitizer.bench-history/v1\",\"date\":\"2026-08-03\",\"threads\":1,\
\"total_wall_ms\":50.0,\"figure_wall_ms\":{\"fig7\":20.0,\"fig9\":30.0}}\n";
    let out = bench_trend(history);
    assert!(out.contains("3 run(s)"), "{out}");
    assert!(out.contains("1 unparseable line(s) skipped"), "{out}");
    assert!(out.contains("(pre-schema)"), "{out}");
    assert!(out.contains("-50.0%"), "total halved between the last runs:\n{out}");
    assert!(out.contains("fig7"), "{out}");
    assert!(out.contains("(new)"), "fig9 appears only in the last run:\n{out}");
}
