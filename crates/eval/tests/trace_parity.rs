//! Trace machinery is observation-free: every figure's result bytes are
//! identical with the DBT trace layer (direct-branch chaining, superblock
//! formation, probe-fusion precompute) on or off, at any thread count —
//! traces only change host wall time. Plus a direct engine-equivalence
//! check: a hot-loop workload executed through superblocks reports the
//! same outcome, modeled cycles, and violations as block-at-a-time
//! execution. The trace and thread-count switches are process-wide, so
//! these tests serialize on a mutex.

use janitizer_core::{run_hybrid, HybridOptions};
use janitizer_eval::{
    build_eval_world, fig11, fig12, fig13, fig14, fig7, fig8, fig9, set_threads, set_traces,
    EvalWorld, FigResult,
};
use janitizer_jasan::{Jasan, RT_MODULE};
use janitizer_vm::LoadOptions;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn all_figs(ew: &EvalWorld) -> Vec<FigResult> {
    [fig7, fig8, fig9, fig11, fig12, fig13, fig14]
        .iter()
        .map(|f| f(ew))
        .collect()
}

/// Renders every figure with the given trace setting at the given thread
/// count. Each pass builds a fresh world (cold rule cache) so runs
/// actually execute under the requested setting.
fn figures_with(traces: bool, threads: usize) -> Vec<FigResult> {
    set_threads(threads);
    set_traces(traces);
    let ew = build_eval_world(0.05);
    let figs = all_figs(&ew);
    set_traces(true);
    set_threads(1);
    figs
}

#[test]
fn figures_are_byte_identical_with_traces_off() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 4] {
        let on = figures_with(true, threads);
        let off = figures_with(false, threads);
        for (a, b) in on.iter().zip(off.iter()) {
            assert_eq!(
                a.render(),
                b.render(),
                "{} (threads {threads}): render diverged",
                a.title
            );
            assert_eq!(a.to_csv(), b.to_csv(), "{} (threads {threads}): CSV diverged", a.title);
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{} (threads {threads}): JSON diverged",
                a.title
            );
        }
    }
}

#[test]
fn superblock_execution_is_equivalent_to_block_at_a_time() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(1);
    let ew = build_eval_world(0.05);
    // Every evaluation workload under the full sanitizer, with the
    // hotness threshold forced low so superblocks form on the real
    // workload loops — against the same runs with traces disabled.
    for (i, w) in ew.world.workloads.iter().enumerate() {
        let load = LoadOptions {
            args: vec![ew.world.args[i]],
            preload: vec![RT_MODULE.into()],
            ..LoadOptions::default()
        };
        let traced_opts = HybridOptions {
            load: load.clone(),
            trace_threshold: 2,
            ..HybridOptions::default()
        };
        let plain_opts = HybridOptions {
            load,
            no_traces: true,
            ..HybridOptions::default()
        };
        let traced = run_hybrid(&ew.world.store, w.name, Jasan::hybrid(), &traced_opts).unwrap();
        let plain = run_hybrid(&ew.world.store, w.name, Jasan::hybrid(), &plain_opts).unwrap();
        assert_eq!(traced.outcome, plain.outcome, "{}: outcome diverged", w.name);
        assert_eq!(traced.cycles, plain.cycles, "{}: modeled cycles diverged", w.name);
        assert_eq!(traced.insns, plain.insns, "{}: guest insns diverged", w.name);
        assert_eq!(traced.stdout, plain.stdout, "{}: stdout diverged", w.name);
        assert_eq!(
            traced.engine.reports, plain.engine.reports,
            "{}: violation reports diverged",
            w.name
        );
        assert_eq!(
            traced.engine.probe_runs, plain.engine.probe_runs,
            "{}: probe accounting diverged",
            w.name
        );
        // The traced run exercised the machinery it claims to bypass.
        assert_eq!(plain.engine.superblocks_formed, 0);
        assert_eq!(plain.engine.chained_transfers, 0);
    }
    // At least one workload actually formed superblocks and bypassed the
    // dispatcher, so the equivalence above is not vacuous.
    let w = &ew.world.workloads[0];
    let load = LoadOptions {
        args: vec![ew.world.args[0]],
        preload: vec![RT_MODULE.into()],
        ..LoadOptions::default()
    };
    let traced = run_hybrid(
        &ew.world.store,
        w.name,
        Jasan::hybrid(),
        &HybridOptions {
            load,
            trace_threshold: 2,
            ..HybridOptions::default()
        },
    )
    .unwrap();
    assert!(
        traced.engine.superblocks_formed > 0,
        "{}: no superblocks formed at threshold 2",
        w.name
    );
    assert!(
        traced.engine.chained_transfers > 0,
        "{}: no dispatcher bypasses",
        w.name
    );
}
