//! The analyze-once / run-many performance layer: cached rule files are
//! byte-identical to fresh ones, shared modules are analyzed exactly once
//! per eval invocation, and the parallel figure fan-out is
//! byte-deterministic against the serial reference. The thread-count
//! switch is process-wide, so these tests serialize on a mutex.

use janitizer_core::{analyze_statically, RuleCache, SecurityPlugin};
use janitizer_eval::{
    build_eval_world, fig10, fig12, fig14, run_config, set_threads, threads, ToolConfig,
};
use janitizer_jasan::Jasan;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn cached_rule_files_match_fresh_analysis_byte_for_byte() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ew = build_eval_world(0.05);
    let cache = RuleCache::new();
    let plugin = Jasan::hybrid();
    for name in ["libjc.so", "ld.so"] {
        let image = ew.world.store.get(name).expect("shared module");
        let fresh = analyze_statically(&image, &plugin);
        let first = cache.get_or_analyze(&image, &plugin, true);
        let second = cache.get_or_analyze(&image, &plugin, true);
        assert_eq!(
            fresh.to_bytes(),
            first.to_bytes(),
            "{name}: cache miss path diverged from a fresh analysis"
        );
        assert_eq!(
            first.to_bytes(),
            second.to_bytes(),
            "{name}: cache hit returned a different rule file"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 2);
}

#[test]
fn distinct_plugin_configurations_do_not_share_cache_slots() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ew = build_eval_world(0.05);
    let image = ew.world.store.get("libjc.so").expect("shared module");
    let cache = RuleCache::new();
    let full = cache.get_or_analyze(&image, &Jasan::hybrid(), true);
    let base = cache.get_or_analyze(&image, &Jasan::hybrid_base(), true);
    assert_ne!(
        Jasan::hybrid().cache_key(),
        Jasan::hybrid_base().cache_key(),
        "ablation configs must key separately"
    );
    // Each configuration lands in its own slot: two distinct analyses of
    // the same module, never served from each other's entry. (The emitted
    // bytes may coincide for some modules — the configs differ in the
    // instrumentation phase — so the invariant is slot separation, not
    // payload inequality.)
    let stats = cache.stats();
    assert_eq!(stats.misses, 2, "each config must run its own analysis");
    assert_eq!(stats.hits, 0, "different keys never alias");
    assert_eq!(cache.analysis_count("libjc.so", &Jasan::hybrid().cache_key()), 1);
    assert_eq!(
        cache.analysis_count("libjc.so", &Jasan::hybrid_base().cache_key()),
        1
    );
    // Re-requesting either config now hits its own slot and returns the
    // exact bytes that slot was filled with.
    let full2 = cache.get_or_analyze(&image, &Jasan::hybrid(), true);
    let base2 = cache.get_or_analyze(&image, &Jasan::hybrid_base(), true);
    assert_eq!(full.to_bytes(), full2.to_bytes());
    assert_eq!(base.to_bytes(), base2.to_bytes());
    assert_eq!(cache.stats().hits, 2);
}

#[test]
fn shared_modules_are_analyzed_exactly_once_per_invocation() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ew = build_eval_world(0.05);

    // Several figure cells over several workloads, all JASan-hybrid: the
    // shared libraries are needed by every run but must be analyzed once.
    for idx in 0..ew.world.workloads.len().min(3) {
        let _ = run_config(&ew, idx, ToolConfig::JasanHybrid);
    }
    let key = Jasan::hybrid().cache_key();
    for shared in ["libjc.so", "ld.so"] {
        assert_eq!(
            ew.cache.analysis_count(shared, &key),
            1,
            "{shared} must be statically analyzed exactly once per eval invocation"
        );
    }
    let stats = ew.cache.stats();
    assert!(
        stats.hits > 0,
        "repeated runs must be served from the cache (hits={}, misses={})",
        stats.hits,
        stats.misses
    );
}

#[test]
fn parallel_and_serial_figures_are_byte_identical() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    // Serial reference on a fresh world (fresh cache), then an explicit
    // multi-worker fan-out on another fresh world: every CSV/JSON byte
    // must match. An explicit count (not 0 = auto) guarantees the scoped
    // threads actually spawn even on a single-core machine. fig12 covers
    // multi-column dynamic runs, fig14 the coverage metric, fig10 the
    // parallel Juliet fold.
    set_threads(1);
    let ew_serial = build_eval_world(0.05);
    let f12_serial = fig12(&ew_serial);
    let f14_serial = fig14(&ew_serial);

    set_threads(4);
    let ew_par = build_eval_world(0.05);
    assert_eq!(threads(), 4);
    let f12_par = fig12(&ew_par);
    let f14_par = fig14(&ew_par);

    assert_eq!(f12_serial.to_csv(), f12_par.to_csv(), "fig12 CSV diverged");
    assert_eq!(f12_serial.to_json(), f12_par.to_json(), "fig12 JSON diverged");
    assert_eq!(f14_serial.to_csv(), f14_par.to_csv(), "fig14 CSV diverged");
    assert_eq!(f14_serial.to_json(), f14_par.to_json(), "fig14 JSON diverged");

    set_threads(1);
    let j_serial = fig10(&ew_serial.world.store);
    set_threads(4);
    let j_par = fig10(&ew_par.world.store);
    set_threads(0);
    assert_eq!(j_serial.valgrind, j_par.valgrind, "fig10 Valgrind counts diverged");
    assert_eq!(j_serial.jasan, j_par.jasan, "fig10 JASan counts diverged");
    assert_eq!(j_serial.render(), j_par.render());
}
