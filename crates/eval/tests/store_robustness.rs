//! Persistent-store robustness invariants, end to end:
//!
//! 1. Exactly-once analysis: N threads warming one cold store perform
//!    the expensive static analysis a single time and all observe the
//!    same rule bytes.
//! 2. Golden byte-parity: rules served from a warm store, from a store
//!    recovered after a torn write, and from a plain in-process analysis
//!    are byte-identical.

use janitizer_core::{analyze_statically, FillSource, RuleCache, SecurityPlugin};
use janitizer_eval::build_eval_world;
use janitizer_jasan::Jasan;
use janitizer_store::{scratch_dir, RuleStore, StoreKey};
use std::sync::Arc;

fn open_store(dir: &std::path::Path) -> Arc<RuleStore> {
    Arc::new(RuleStore::open(dir).expect("open scratch store"))
}

#[test]
fn cold_store_warmed_by_many_threads_analyzes_exactly_once() {
    let ew = build_eval_world(0.05);
    let dir = scratch_dir("eval-warm");
    let store = open_store(&dir);
    let cache = Arc::new(RuleCache::with_store(Arc::clone(&store)));

    let module = {
        let mut names: Vec<String> =
            ew.world.store.names().into_iter().map(str::to_string).collect();
        names.sort();
        names.into_iter().next().expect("eval world has modules")
    };
    let image = ew.world.store.get(&module).expect("listed module");

    const THREADS: usize = 8;
    let mut all_bytes: Vec<Vec<u8>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = &cache;
                let image = &image;
                scope.spawn(move || {
                    // Plugins are not Send; each thread builds its own.
                    let plugin = Jasan::hybrid();
                    cache.get_or_analyze(image, &plugin, true).to_bytes()
                })
            })
            .collect();
        for h in handles {
            all_bytes.push(h.join().expect("warm thread"));
        }
    });

    let plugin_key = Jasan::hybrid().cache_key();
    assert_eq!(
        cache.analysis_count(&module, &plugin_key),
        1,
        "cold-store warm-up must analyze exactly once"
    );
    let first = &all_bytes[0];
    for (i, b) in all_bytes.iter().enumerate() {
        assert_eq!(b, first, "thread {i} observed different rule bytes");
    }

    // Exactly one entry was committed, and a fresh cache over the same
    // directory is served from disk, not by re-analysis.
    assert_eq!(janitizer_store::list_entries(&store).len(), 1);
    let store2 = open_store(&dir);
    let cache2 = RuleCache::with_store(Arc::clone(&store2));
    let plugin = Jasan::hybrid();
    let (served, source) = cache2.get_or_analyze_traced(&image, &plugin, true);
    assert!(matches!(source, FillSource::Store), "expected store hit, got {source:?}");
    assert_eq!(&served.to_bytes(), first);
    assert_eq!(store2.stats().hits, 1);
    assert_eq!(cache2.analysis_count(&module, &plugin_key), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn golden_byte_parity_across_store_tiers() {
    let ew = build_eval_world(0.05);
    let dir = scratch_dir("eval-parity");

    let mut modules: Vec<String> =
        ew.world.store.names().into_iter().map(str::to_string).collect();
    modules.sort();

    // Tier 0: plain in-process analysis — the golden bytes.
    let plugin = Jasan::hybrid();
    let golden: Vec<(String, Vec<u8>)> = modules
        .iter()
        .map(|m| {
            let image = ew.world.store.get(m).expect("listed module");
            (m.clone(), analyze_statically(&image, &plugin).to_bytes())
        })
        .collect();

    // Tier 1: analyze-and-persist through a cold store.
    {
        let store = open_store(&dir);
        let cache = RuleCache::with_store(Arc::clone(&store));
        for (m, want) in &golden {
            let image = ew.world.store.get(m).expect("listed module");
            let (file, source) = cache.get_or_analyze_traced(&image, &plugin, true);
            assert!(matches!(source, FillSource::Analyzed { store_failed: false }));
            assert_eq!(&file.to_bytes(), want, "{m}: cold fill diverged");
        }
    }

    // Tier 2: a warm store serves every module byte-identically.
    {
        let store = open_store(&dir);
        let cache = RuleCache::with_store(Arc::clone(&store));
        for (m, want) in &golden {
            let image = ew.world.store.get(m).expect("listed module");
            let (file, source) = cache.get_or_analyze_traced(&image, &plugin, true);
            assert!(matches!(source, FillSource::Store), "{m}: expected store hit");
            assert_eq!(&file.to_bytes(), want, "{m}: warm store diverged");
        }
        assert_eq!(store.stats().hits as usize, golden.len());
    }

    // Tier 3: tear one committed entry in half (a simulated mid-write
    // crash), then confirm recovery quarantines it and the re-analysis
    // still lands on the golden bytes.
    let torn_module = golden[0].0.clone();
    {
        let store = open_store(&dir);
        let image = ew.world.store.get(&torn_module).expect("listed module");
        let key = StoreKey {
            module: torn_module.clone(),
            fingerprint: image.fingerprint(),
            plugin: plugin.cache_key(),
            noop: true,
        };
        let path = store.entries_dir().join(key.entry_name());
        let bytes = std::fs::read(&path).expect("committed entry");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("tear entry");
    }
    {
        let store = open_store(&dir);
        let cache = RuleCache::with_store(Arc::clone(&store));
        let image = ew.world.store.get(&torn_module).expect("listed module");
        let (file, source) = cache.get_or_analyze_traced(&image, &plugin, true);
        assert!(
            matches!(source, FillSource::Analyzed { store_failed: false }),
            "torn entry must be quarantined and re-analyzed, got {source:?}"
        );
        assert_eq!(&file.to_bytes(), &golden[0].1, "post-recovery bytes diverged");
        assert_eq!(store.stats().corrupt, 1, "torn entry must be counted corrupt");

        // And the repair is durable: the re-analysis re-persisted the
        // entry, so the next open serves it from disk again.
        let store2 = open_store(&dir);
        let cache2 = RuleCache::with_store(Arc::clone(&store2));
        let (file2, source2) = cache2.get_or_analyze_traced(&image, &plugin, true);
        assert!(matches!(source2, FillSource::Store), "repaired entry not served");
        assert_eq!(file2.to_bytes(), golden[0].1);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
