//! Telemetry on/off parity: enabling collection must not change a single
//! byte of any evaluation result — the cost model is deterministic and
//! telemetry only observes it. These tests flip the process-wide switch,
//! so they run in their own binary and serialize on a mutex.

use janitizer_eval::{build_eval_world, fig13, fig14, run_config, ToolConfig};
use janitizer_telemetry as telemetry;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn results_identical_with_telemetry_on() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());

    // Baseline with telemetry off: one fully-dynamic figure and one
    // static-analysis figure.
    telemetry::set_enabled(false);
    let ew = build_eval_world(0.05);
    let f14_off = fig14(&ew);
    let f13_off = fig13(&ew);

    telemetry::install(Box::<telemetry::InMemoryCollector>::default());
    telemetry::set_enabled(true);
    // A fresh world (and therefore a cold rule cache) so the static
    // pipeline actually re-runs under telemetry rather than being served
    // from the first world's analyze-once cache.
    let ew_on = build_eval_world(0.05);
    let f14_on = fig14(&ew_on);
    let f13_on = fig13(&ew_on);
    telemetry::set_enabled(false);
    let reg = telemetry::snapshot();

    assert_eq!(
        f14_off.to_csv(),
        f14_on.to_csv(),
        "telemetry changed a CSV byte"
    );
    assert_eq!(
        f14_off.to_json(),
        f14_on.to_json(),
        "telemetry changed a JSON byte"
    );
    assert_eq!(f13_off.to_csv(), f13_on.to_csv());
    assert_eq!(f13_off.to_json(), f13_on.to_json());

    // And the enabled run actually collected a meaningful profile.
    assert!(reg.counter("dbt.blocks_translated") > 0);
    assert!(reg.spans.contains_key("run;guest"));
    assert!(reg.spans.contains_key("static;liveness"));
}

#[test]
fn profile_attributes_at_least_95_percent_of_cycles() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ew = build_eval_world(0.05);

    telemetry::install(Box::<telemetry::InMemoryCollector>::default());
    telemetry::set_enabled(true);
    let _ = run_config(&ew, 0, ToolConfig::JasanHybrid).expect("workload runs");
    telemetry::set_enabled(false);
    let reg = telemetry::snapshot();

    // Every cycle charged by the engine or the native baseline lands in a
    // named span path; nothing is unattributed.
    let attributed = reg.total_span_cycles();
    let named: u64 = ["run;native", "run;guest", "run;dbt;translate", "run;dbt;dispatch", "run;dbt;probes"]
        .iter()
        .filter_map(|p| reg.spans.get(*p).map(|s| s.cycles))
        .sum();
    assert!(attributed > 0);
    assert!(
        named as f64 >= attributed as f64 * 0.95,
        "named spans cover {named} of {attributed} cycles"
    );

    // The folded-stack export carries the same attribution.
    let folded = telemetry::export::to_folded(&reg);
    assert!(folded.contains("run;guest "));
    assert!(folded.lines().count() >= 3);
}
