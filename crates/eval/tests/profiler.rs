//! Deterministic profiler invariants: attribution conservation (every
//! attributed cycle sums exactly to the engine's modeled totals), byte
//! identity of the exported artifacts across thread counts, and strict
//! observation-only behavior (figure bytes are identical with profiling
//! on or off). The profiling and thread-count switches are process-wide,
//! so these tests serialize on a mutex.

use janitizer_eval::{
    build_eval_world, fig11, fig12, fig13, fig14, fig7, fig8, fig9, run_config, set_profiling,
    set_threads, take_profiles, ToolConfig,
};
use std::collections::BTreeMap;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Runs fig14 (JasanHybrid over every workload) with profiling armed at
/// the given thread count and returns each cell's rendered artifacts.
fn profiled_fig14(threads: usize) -> BTreeMap<(String, String), (String, String, String)> {
    set_threads(threads);
    let _ = take_profiles();
    set_profiling(true);
    let ew = build_eval_world(0.05);
    let _ = fig14(&ew);
    set_profiling(false);
    take_profiles()
        .into_iter()
        .map(|(k, p)| {
            (
                k,
                (
                    p.to_json(10).render_pretty(),
                    p.to_folded(),
                    p.budget_table(10),
                ),
            )
        })
        .collect()
}

#[test]
fn attribution_conserves_cycles_exactly() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(1);
    let _ = take_profiles();
    set_profiling(true);
    let ew = build_eval_world(0.05);
    let _ = fig14(&ew);
    // A few more configurations over the first workload so the per-site
    // identity is exercised for inline and clean-call probes and for
    // static and dynamic fallback origins.
    for cfg in [
        ToolConfig::Valgrind,
        ToolConfig::JasanDyn,
        ToolConfig::JcfiHybrid,
        ToolConfig::BinCfi,
    ] {
        let _ = run_config(&ew, 0, cfg);
    }
    set_profiling(false);
    let profiles = take_profiles();
    assert!(!profiles.is_empty(), "profiling produced no cells");
    for ((workload, config), p) in &profiles {
        let t = p.class_totals();
        // Per-block conservation: every cycle the process spent is
        // attributed to exactly one (block, class) bucket.
        assert_eq!(
            t.total(),
            p.total_cycles,
            "{workload}/{config}: attributed {} of {} cycles",
            t.total(),
            p.total_cycles
        );
        // Per-site conservation: every probe the plugins register is
        // site-tagged, so the per-site cycle sum covers the probe
        // classes exactly.
        let site_cycles: u64 = p.sites.values().map(|s| s.stats.cycles).sum();
        assert_eq!(
            site_cycles,
            t.inline_probes + t.clean_call_probes,
            "{workload}/{config}: untagged probe cycles"
        );
        let site_execs: u64 = p.sites.values().map(|s| s.stats.execs).sum();
        assert_eq!(site_execs, p.engine.probe_runs, "{workload}/{config}");
        // Trace-layer counters conserve: fused followers ride real probe
        // executions, superblocks stitch only translated blocks, a chain
        // hit is a kind of indirect transfer, and hoisted hits surface as
        // elided executions (they are not probe runs, so they must be
        // covered by the sites' elided sum).
        let e = &p.engine;
        assert!(e.checks_fused <= e.probe_runs, "{workload}/{config}");
        assert!(e.superblocks_formed <= e.blocks_translated, "{workload}/{config}");
        assert!(e.indirect_chain_hits <= e.indirect_transfers, "{workload}/{config}");
        assert!(e.checks_hoisted <= p.checks_elided(), "{workload}/{config}");
    }
    // The instrumented cells actually carry sites; the attribution is
    // not vacuous.
    assert!(
        profiles
            .values()
            .any(|p| p.sites.keys().any(|k| k.tool == "jasan")),
        "no jasan probe sites recorded"
    );
    assert!(
        profiles
            .values()
            .any(|p| p.sites.keys().any(|k| k.tool == "jcfi")),
        "no jcfi probe sites recorded"
    );
}

#[test]
fn profiles_are_byte_identical_across_thread_counts() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let serial = profiled_fig14(1);
    let parallel = profiled_fig14(4);
    set_threads(1);
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "cell sets diverged across thread counts"
    );
    for (key, (json1, folded1, budget1)) in &serial {
        let (json4, folded4, budget4) = &parallel[key];
        assert_eq!(json1, json4, "{key:?}: profile JSON diverged");
        assert_eq!(folded1, folded4, "{key:?}: folded stacks diverged");
        assert_eq!(budget1, budget4, "{key:?}: budget table diverged");
    }
}

#[test]
fn profiling_changes_no_figure_byte() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    set_threads(1);

    set_profiling(false);
    let ew_off = build_eval_world(0.05);
    let figs = [fig7, fig8, fig9, fig11, fig12, fig13, fig14];
    let off: Vec<_> = figs.iter().map(|f| f(&ew_off)).collect();

    let _ = take_profiles();
    set_profiling(true);
    // A fresh world (cold rule cache) so every run actually re-executes
    // under profiling instead of being served from the first world's
    // analyze-once cache.
    let ew_on = build_eval_world(0.05);
    let on: Vec<_> = figs.iter().map(|f| f(&ew_on)).collect();
    set_profiling(false);
    let profiles = take_profiles();

    for (a, b) in off.iter().zip(on.iter()) {
        assert_eq!(a.render(), b.render(), "{}: render diverged", a.title);
        assert_eq!(a.to_csv(), b.to_csv(), "{}: CSV diverged", a.title);
        assert_eq!(a.to_json(), b.to_json(), "{}: JSON diverged", a.title);
    }
    // ...and the profiled pass did observe the runs it rode along with.
    assert!(
        !profiles.is_empty(),
        "profiling armed but no cells collected"
    );
}
