//! End-to-end MiniC tests: compile → assemble → link → load → run.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CanaryMode, CompileError, CompileOptions};
use janitizer_vm::{load_process, Exit, LoadOptions, ModuleStore};

/// Compiles, assembles, links and runs a standalone MiniC program,
/// returning its exit code.
fn run_c(src: &str) -> i64 {
    run_c_opts(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    )
}

/// Minimal runtime: `__stack_chk_fail` aborts via the kernel.
const CRT: &str = ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n\
                   mov r0, 12\n la r1, msg\n mov r2, 23\n syscall\n\
                   .section rodata\nmsg: .ascii \"stack smashing detected\"\n";

fn run_c_opts(src: &str, opts: &CompileOptions) -> i64 {
    let asm = compile(src, opts).expect("compile");
    let obj = assemble("prog.s", &asm, &AsmOptions::default()).unwrap_or_else(|e| {
        panic!("assembly of generated code failed: {e}\n{asm}");
    });
    let crt = assemble("crt.s", CRT, &AsmOptions::default()).expect("crt");
    let img = link(&[obj, crt], &LinkOptions::executable("prog")).expect("link");
    let mut store = ModuleStore::new();
    store.add(img);
    let mut p = load_process(&store, "prog", &LoadOptions::default()).expect("load");
    match p.run_native(500_000_000) {
        Exit::Exited(c) => c,
        other => panic!(
            "program did not exit cleanly: {other:?}\nstdout: {}",
            p.stdout_string()
        ),
    }
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_c("long main() { return 2 + 3 * 4; }"), 14);
    assert_eq!(run_c("long main() { return (2 + 3) * 4; }"), 20);
    assert_eq!(run_c("long main() { return 100 / 7; }"), 14);
    assert_eq!(run_c("long main() { return 100 % 7; }"), 2);
    assert_eq!(run_c("long main() { return 1 << 10; }"), 1024);
    assert_eq!(run_c("long main() { return 1024 >> 3; }"), 128);
    assert_eq!(run_c("long main() { return (0xf0 | 0x0f) & 0x3c; }"), 0x3c);
    assert_eq!(run_c("long main() { return 5 ^ 3; }"), 6);
    assert_eq!(run_c("long main() { return -(5) + 10; }"), 5);
    assert_eq!(run_c("long main() { return ~0 + 2; }"), 1);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(run_c("long main() { return 1 < 2; }"), 1);
    assert_eq!(run_c("long main() { return 2 < 1; }"), 0);
    assert_eq!(run_c("long main() { return -1 < 1; }"), 1, "signed compare");
    assert_eq!(run_c("long main() { return 3 == 3 && 4 != 5; }"), 1);
    assert_eq!(run_c("long main() { return 0 || 7; }"), 1);
    assert_eq!(run_c("long main() { return !5; }"), 0);
    assert_eq!(run_c("long main() { return !0; }"), 1);
    // Short-circuit: the crashing call must not run.
    assert_eq!(
        run_c(
            "long crash() { long *p = 0; return *p; }\
             long main() { return 0 && crash(); }"
        ),
        0
    );
}

#[test]
fn loops() {
    assert_eq!(
        run_c("long main() { long s = 0; for (long i = 1; i <= 10; i++) s += i; return s; }"),
        55
    );
    assert_eq!(
        run_c("long main() { long s = 0; long i = 0; while (i < 5) { s += 2; i++; } return s; }"),
        10
    );
    assert_eq!(
        run_c(
            "long main() { long s = 0; for (long i = 0; i < 100; i++) { if (i == 5) break; s += i; } return s; }"
        ),
        10
    );
    assert_eq!(
        run_c(
            "long main() { long s = 0; for (long i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }"
        ),
        20
    );
}

#[test]
fn functions_and_recursion() {
    assert_eq!(
        run_c(
            "long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\
             long main() { return fib(15); }"
        ),
        610
    );
    assert_eq!(
        run_c(
            "long add3(long a, long b, long c) { return a + b + c; }\
             long main() { return add3(1, 2, 3); }"
        ),
        6
    );
    assert_eq!(
        run_c(
            "static long twice(long x) { return x * 2; }\
             long main() { return twice(21); }"
        ),
        42
    );
}

#[test]
fn six_args() {
    assert_eq!(
        run_c(
            "long f(long a, long b, long c, long d, long e, long g) { return a+b+c+d+e+g; }\
             long main() { return f(1,2,3,4,5,6); }"
        ),
        21
    );
}

#[test]
fn pointers_and_arrays() {
    assert_eq!(
        run_c(
            "long main() { long a[4]; a[0] = 10; a[1] = 20; a[3] = 30; return a[0] + a[1] + a[3]; }"
        ),
        60
    );
    assert_eq!(
        run_c("long main() { long x = 5; long *p = &x; *p = 9; return x; }"),
        9
    );
    assert_eq!(
        run_c("long main() { long a[3]; long *p = a; *(p + 2) = 7; return a[2]; }"),
        7
    );
    assert_eq!(
        run_c(
            "long set(long *p, long v) { *p = v; return 0; }\
             long main() { long x = 0; set(&x, 33); return x; }"
        ),
        33
    );
}

#[test]
fn char_arrays_and_strings() {
    assert_eq!(
        run_c("long main() { char buf[8]; buf[0] = 'A'; buf[1] = 'B'; return buf[0] + buf[1]; }"),
        65 + 66
    );
    assert_eq!(
        run_c("long main() { char *s = \"AZ\"; return s[0] + s[1]; }"),
        65 + 90
    );
}

#[test]
fn globals() {
    assert_eq!(
        run_c(
            "long counter = 5;\
             long bump() { counter += 3; return 0; }\
             long main() { bump(); bump(); return counter; }"
        ),
        11
    );
    assert_eq!(
        run_c(
            "long table[] = {10, 20, 30, 40};\
             long main() { return table[2]; }"
        ),
        30
    );
    assert_eq!(run_c("long zeroed[16]; long main() { return zeroed[7]; }"), 0);
}

#[test]
fn function_pointers() {
    assert_eq!(
        run_c(
            "long inc(long x) { return x + 1; }\
             long dec(long x) { return x - 1; }\
             long main() { long f = &inc; long g = &dec; return f(10) + g(10); }"
        ),
        20
    );
    // Table of function pointers — address-taken functions.
    assert_eq!(
        run_c(
            "long a() { return 1; } long b() { return 2; } long c() { return 4; }\
             long ops[] = {&a, &b, &c};\
             long main() { long s = 0; for (long i = 0; i < 3; i++) { long f = ops[i]; s += f(); } return s; }"
        ),
        7
    );
}

#[test]
fn switch_if_chain_and_jump_table() {
    // Sparse: if-chain.
    let sparse = "long f(long x) { switch (x) { case 1: return 10; case 100: return 20; default: return 30; } }\
                  long main() { return f(1) + f(100) + f(55); }";
    assert_eq!(run_c(sparse), 60);
    // Dense: jump table.
    let dense = "long f(long x) { switch (x) {\
                   case 0: return 5; case 1: return 6; case 2: return 7;\
                   case 3: return 8; case 4: return 9; default: return 1; } }\
                 long main() { return f(0) + f(2) + f(4) + f(77); }";
    assert_eq!(run_c(dense), 5 + 7 + 9 + 1);
    let asm = compile(dense, &CompileOptions::default()).unwrap();
    assert!(asm.contains(".quad"), "dense switch should emit a jump table");
    assert!(asm.contains("jmp r7"), "jump table dispatch is an indirect jump");
}

#[test]
fn tables_in_text_option() {
    let dense = "long f(long x) { switch (x) {\
                   case 0: return 5; case 1: return 6; case 2: return 7;\
                   case 3: return 8; case 4: return 9; default: return 1; } }\
                 long main() { return f(3); }";
    let opts = CompileOptions {
        emit_start: true,
        tables_in_text: true,
        ..CompileOptions::default()
    };
    assert_eq!(run_c_opts(dense, &opts), 8, "in-text tables still execute");
    let asm = compile(dense, &opts).unwrap();
    // The table must NOT be in a rodata section.
    let ro = asm.find(".section rodata");
    let tbl = asm.find(".quad").unwrap();
    assert!(ro.is_none() || tbl < ro.unwrap());
}

#[test]
fn ternary() {
    assert_eq!(run_c("long main() { long x = 5; return x > 3 ? 100 : 200; }"), 100);
    assert_eq!(run_c("long main() { long x = 1; return x > 3 ? 100 : 200; }"), 200);
}

#[test]
fn canary_modes() {
    let src = "long main() { char buf[16]; buf[0] = 1; return buf[0]; }";
    let with = compile(
        src,
        &CompileOptions {
            canary: CanaryMode::Arrays,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert!(with.contains("rdtls r6, 0x28"), "canary loads the TLS cookie");
    assert!(with.contains("__stack_chk_fail"));
    let without = compile(
        src,
        &CompileOptions {
            canary: CanaryMode::Off,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert!(!without.contains("rdtls"));
    // No arrays -> no canary under the Arrays heuristic.
    let scalar = compile("long f(long x) { return x; }", &CompileOptions::default()).unwrap();
    assert!(!scalar.contains("rdtls"));
    // All mode protects everything.
    let all = compile(
        "long f(long x) { return x; }",
        &CompileOptions {
            canary: CanaryMode::All,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert!(all.contains("rdtls"));
}

#[test]
fn canary_programs_run_correctly() {
    let src = "long sum(long *a, long n) { long s = 0; for (long i = 0; i < n; i++) s += a[i]; return s; }\
               long main() { long v[5]; for (long i = 0; i < 5; i++) v[i] = i * i; return sum(v, 5); }";
    let opts = CompileOptions {
        emit_start: true,
        canary: CanaryMode::All,
        ..CompileOptions::default()
    };
    assert_eq!(run_c_opts(src, &opts), 1 + 4 + 9 + 16);
}

#[test]
fn ipa_ra_keeps_value_in_caller_saved_reg() {
    // `leaf` is compiled first and uses few registers; with ipa_ra the
    // caller holds `acc` in a caller-saved register across the call.
    let src = "long leaf(long x) { return x + 1; }\
               long main() { long acc = 40; return acc + leaf(1); }";
    let ipa_opts = CompileOptions {
        ipa_ra: true,
        emit_start: true,
        ..CompileOptions::default()
    };
    let with = compile(src, &ipa_opts).unwrap();
    assert!(
        with.contains("mov r5, r0") || with.contains("mov r4, r0"),
        "expected an ipa-ra hold register:\n{with}"
    );
    assert_eq!(run_c_opts(src, &ipa_opts), 42);
    // Without ipa_ra the value goes through the stack.
    let without = compile(src, &CompileOptions::default()).unwrap();
    assert!(!without.contains("mov r5, r0"));
    assert_eq!(run_c(src), 42);
}

#[test]
fn compound_assignment_with_pointers() {
    assert_eq!(
        run_c(
            "long main() { long a[4]; a[0]=1; a[1]=2; a[2]=3; a[3]=4;\
             long *p = a; p += 2; return *p; }"
        ),
        3
    );
    assert_eq!(
        run_c("long main() { long x = 10; x <<= 2; x -= 8; x /= 4; return x; }"),
        8
    );
}

#[test]
fn extern_calls_link_against_other_objects() {
    // `helper` is extern here; provided by a second object.
    let asm1 = compile(
        "long main() { return helper(20) + 1; }",
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let asm2 = compile("long helper(long x) { return x * 2; }", &CompileOptions::default()).unwrap();
    let o1 = assemble("a.s", &asm1, &AsmOptions::default()).unwrap();
    let o2 = assemble("b.s", &asm2, &AsmOptions::default()).unwrap();
    let img = link(&[o1, o2], &LinkOptions::executable("prog")).unwrap();
    let mut store = ModuleStore::new();
    store.add(img);
    let mut p = load_process(&store, "prog", &LoadOptions::default()).unwrap();
    assert_eq!(p.run_native(10_000_000), Exit::Exited(41));
}

#[test]
fn nested_scopes_shadowing() {
    assert_eq!(
        run_c("long main() { long x = 1; { long x = 2; { long x = 3; } } return x; }"),
        1
    );
}

#[test]
fn semantic_errors() {
    assert!(matches!(
        compile("long main() { return nope; }", &CompileOptions::default()),
        Err(CompileError::Semantic(_))
    ));
    assert!(matches!(
        compile("long main() { 5 = 6; return 0; }", &CompileOptions::default()),
        Err(CompileError::Semantic(_))
    ));
    assert!(matches!(
        compile("long main() { break; }", &CompileOptions::default()),
        Err(CompileError::Semantic(_))
    ));
}
