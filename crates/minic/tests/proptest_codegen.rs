//! Differential property tests: random MiniC expressions are compiled,
//! assembled, linked and executed on the guest VM, and the result is
//! compared against a host-side evaluation of the same expression tree.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CanaryMode, CompileOptions};
use janitizer_vm::{load_process, Exit, LoadOptions, ModuleStore};
use proptest::prelude::*;

/// A small expression AST mirroring what we render to MiniC source.
#[derive(Clone, Debug)]
enum E {
    Num(i64),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>),
    Lt(Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
}

const VARS: [i64; 4] = [7, -3, 1000, 42];

impl E {
    fn eval(&self) -> i64 {
        match self {
            E::Num(v) => *v,
            E::Var(i) => VARS[*i],
            E::Add(a, b) => a.eval().wrapping_add(b.eval()),
            E::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            E::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            E::And(a, b) => a.eval() & b.eval(),
            E::Or(a, b) => a.eval() | b.eval(),
            E::Xor(a, b) => a.eval() ^ b.eval(),
            E::Shl(a) => a.eval().wrapping_shl(3),
            E::Lt(a, b) => (a.eval() < b.eval()) as i64,
            E::Ternary(c, t, f) => {
                if c.eval() != 0 {
                    t.eval()
                } else {
                    f.eval()
                }
            }
        }
    }

    fn render(&self) -> String {
        match self {
            E::Num(v) => {
                if *v < 0 {
                    format!("(0 - {})", -v)
                } else {
                    format!("{v}")
                }
            }
            E::Var(i) => format!("v{i}"),
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::And(a, b) => format!("({} & {})", a.render(), b.render()),
            E::Or(a, b) => format!("({} | {})", a.render(), b.render()),
            E::Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
            E::Shl(a) => format!("({} << 3)", a.render()),
            E::Lt(a, b) => format!("({} < {})", a.render(), b.render()),
            E::Ternary(c, t, f) => {
                format!("({} ? {} : {})", c.render(), t.render(), f.render())
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(E::Num),
        (0usize..4).prop_map(E::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Shl(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| E::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn run_guest(src: &str) -> i64 {
    // Canaries off: these standalone programs link no libc to provide
    // `__stack_chk_fail` (the canary machinery has its own tests).
    let asm = compile(
        src,
        &CompileOptions {
            emit_start: true,
            canary: CanaryMode::Off,
            ..CompileOptions::default()
        },
    )
    .expect("compile");
    let obj = assemble("p.s", &asm, &AsmOptions::default()).expect("assemble");
    let img = link(&[obj], &LinkOptions::executable("p")).expect("link");
    let mut store = ModuleStore::new();
    store.add(img);
    let mut p = load_process(&store, "p", &LoadOptions::default()).expect("load");
    match p.run_native(200_000_000) {
        Exit::Exited(c) => c,
        other => panic!("guest did not exit: {other:?}\nsource: {src}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Guest evaluation of a random expression matches host evaluation.
    #[test]
    fn expressions_evaluate_identically(e in arb_expr()) {
        let expected = (e.eval() as u64 & 255) as i64;
        let src = format!(
            "long main() {{ long v0 = 7; long v1 = 0 - 3; long v2 = 1000; long v3 = 42;\
             return ({}) & 255; }}",
            e.render()
        );
        let got = run_guest(&src);
        prop_assert_eq!(got, expected, "source: {}", src);
    }

    /// Loop-computed sums match closed-form results.
    #[test]
    fn summation_loops(n in 1i64..60, step in 1i64..9) {
        let src = format!(
            "long main() {{ long s = 0; for (long i = 0; i < {n}; i++) s += i * {step};\
             return s & 255; }}"
        );
        let expected = ((0..n).map(|i| i * step).sum::<i64>() as u64 & 255) as i64;
        prop_assert_eq!(run_guest(&src), expected);
    }

    /// Arrays written then reduced behave like a Vec.
    #[test]
    fn array_roundtrip(vals in prop::collection::vec(-100i64..100, 1..12)) {
        let n = vals.len();
        let mut writes = String::new();
        for (i, v) in vals.iter().enumerate() {
            let r = if *v < 0 { format!("(0 - {})", -v) } else { v.to_string() };
            writes.push_str(&format!("a[{i}] = {r};"));
        }
        let src = format!(
            "long main() {{ long a[{n}]; {writes} long s = 0;\
             for (long i = 0; i < {n}; i++) s += a[i]; return s & 255; }}"
        );
        let expected = (vals.iter().sum::<i64>() as u64 & 255) as i64;
        prop_assert_eq!(run_guest(&src), expected);
    }
}
