//! Totality tests: the MiniC frontend never panics, whatever the input.

use janitizer_minic::{compile, lex, parse, CompileOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total over arbitrary ASCII.
    #[test]
    fn lexer_never_panics(src in "[ -~\\n\\t]{0,200}") {
        let _ = lex(&src);
    }

    /// The parser is total over arbitrary ASCII.
    #[test]
    fn parser_never_panics(src in "[ -~\\n\\t]{0,200}") {
        let _ = parse(&src);
    }

    /// The whole compiler is total over token soup assembled from MiniC's
    /// own vocabulary (more likely to get deep into parsing/codegen).
    #[test]
    fn compiler_never_panics_on_token_soup(
        toks in prop::collection::vec(
            prop::sample::select(vec![
                "long", "char", "*", "main", "x", "y", "(", ")", "{", "}",
                "[", "]", ";", ",", "=", "+", "-", "if", "else", "while",
                "for", "return", "switch", "case", "default", "break",
                "continue", "static", "1", "42", "&", "!", "?", ":", "<",
                ">", "==", "\"s\"", "'c'",
            ]),
            0..60
        )
    ) {
        let src = toks.join(" ");
        let _ = compile(&src, &CompileOptions::default());
    }

    /// Valid skeletons with arbitrary identifier names compile or fail
    /// cleanly, never panic.
    #[test]
    fn identifier_names_are_safe(name in "[a-zA-Z_][a-zA-Z0-9_]{0,20}") {
        let src = format!("long {name}(long a) {{ return a; }} long main() {{ return {name}(1); }}");
        // Keywords used as names must error, others succeed — either way,
        // no panic.
        let _ = compile(&src, &CompileOptions::default());
    }
}
