//! MiniC code generation to JX-64 textual assembly.
//!
//! The generated code deliberately reproduces the idioms the Janitizer
//! paper's analyses must handle:
//!
//! * **stack canaries** (gcc `-fstack-protector` style): the prologue
//!   copies the TLS cookie to `[fp-8]`, the epilogue re-checks it and
//!   calls `__stack_chk_fail` on mismatch — the pattern JASan's canary
//!   analysis detects and poisons (paper §3.3.3, Figure 6);
//! * **jump tables** for dense `switch`es (indexed load + indirect jump),
//!   placed in `.rodata` by default or — with
//!   [`CompileOptions::tables_in_text`] — interleaved with code, the
//!   code/data ambiguity that breaks static-only rewriting (§2.1);
//! * the **`ipa-ra` convention break** (§4.1.2): with
//!   [`CompileOptions::ipa_ra`], a value may be kept in a caller-saved
//!   register across a call to a same-unit function known not to touch
//!   it, which invalidates purely intra-procedural liveness reasoning.

use crate::ast::*;
use crate::parser::{parse, ParseError};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// When to emit stack-canary protection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CanaryMode {
    /// Never.
    Off,
    /// Functions with local arrays (gcc's default heuristic).
    #[default]
    Arrays,
    /// Every function.
    All,
}

/// Compiler configuration.
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    /// Stack-canary policy.
    pub canary: CanaryMode,
    /// Allow the calling-convention break of gcc's `ipa-ra`: hold values
    /// in caller-saved registers across calls to same-unit functions that
    /// provably do not use them.
    pub ipa_ra: bool,
    /// Emit `switch` jump tables into `.text` instead of `.rodata`
    /// (models compilers that inter-mix code and data).
    pub tables_in_text: bool,
    /// Emit a `_start` that calls `main` (for libc-less programs).
    pub emit_start: bool,
}

/// A compilation error.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error (unknown variable, bad lvalue, ...).
    Semantic(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

#[derive(Clone)]
struct LocalVar {
    /// Positive distance below `fp`: the slot lives at `[fp - off]`.
    off: i64,
    ty: Type,
    is_array: bool,
}

struct GlobalVar {
    ty: Type,
    is_array: bool,
}

struct FnCtx<'a> {
    gen: &'a mut Codegen,
    name: String,
    scopes: Vec<HashMap<String, LocalVar>>,
    next_off: i64,
    label_n: usize,
    breaks: Vec<String>,
    continues: Vec<String>,
    body: String,
    /// Deferred `.rodata` lines (string literals, jump tables).
    rodata: String,
}

struct Codegen {
    opts: CompileOptions,
    globals: HashMap<String, GlobalVar>,
    known_funcs: HashMap<String, bool>, // name -> is_static
    /// Register-usage masks of already-compiled functions (for ipa-ra).
    compiled_masks: HashMap<String, u16>,
    str_n: usize,
}

fn scan_frame_size(stmts: &[Stmt]) -> i64 {
    let mut total = 0;
    for s in stmts {
        match s {
            Stmt::Decl { ty, array, .. } => {
                let sz = match array {
                    Some(n) => (ty.size() * n).div_ceil(8) * 8,
                    None => 8,
                };
                total += sz as i64;
            }
            Stmt::If { t, e, .. } => total += scan_frame_size(t) + scan_frame_size(e),
            Stmt::While { body, .. } => total += scan_frame_size(body),
            Stmt::For { init, step, body, .. } => {
                if let Some(i) = init {
                    total += scan_frame_size(std::slice::from_ref(i));
                }
                if let Some(st) = step {
                    total += scan_frame_size(std::slice::from_ref(st));
                }
                total += scan_frame_size(body);
            }
            Stmt::Switch { cases, default, .. } => {
                for (_, b) in cases {
                    total += scan_frame_size(b);
                }
                total += scan_frame_size(default);
            }
            Stmt::Block(b) => total += scan_frame_size(b),
            _ => {}
        }
    }
    total
}

fn has_local_array(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Decl { array, .. } => array.is_some(),
        Stmt::If { t, e, .. } => has_local_array(t) || has_local_array(e),
        Stmt::While { body, .. } => has_local_array(body),
        Stmt::For { init, step, body, .. } => {
            init.as_deref().map(|i| has_local_array(std::slice::from_ref(i))) == Some(true)
                || step.as_deref().map(|s| has_local_array(std::slice::from_ref(s))) == Some(true)
                || has_local_array(body)
        }
        Stmt::Switch { cases, default, .. } => {
            cases.iter().any(|(_, b)| has_local_array(b)) || has_local_array(default)
        }
        Stmt::Block(b) => has_local_array(b),
        _ => false,
    })
}

/// Extracts the set of registers mentioned in generated assembly text.
fn used_regs_mask(text: &str) -> u16 {
    let mut mask = 0u16;
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let boundary = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        if boundary && c == b'r' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let after_ok = j >= bytes.len() || !(bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_');
            if j > i + 1 && after_ok {
                if let Ok(n) = text[i + 1..j].parse::<u16>() {
                    if n < 16 {
                        mask |= 1 << n;
                    }
                }
            }
            i = j;
            continue;
        }
        if boundary && bytes[i..].starts_with(b"sp") {
            mask |= 1 << 15;
        }
        if boundary && bytes[i..].starts_with(b"fp") {
            mask |= 1 << 14;
        }
        i += 1;
    }
    mask
}

impl<'a> FnCtx<'a> {
    fn emit(&mut self, line: impl AsRef<str>) {
        let _ = writeln!(self.body, "    {}", line.as_ref());
    }

    fn label(&mut self, prefix: &str) -> String {
        self.label_n += 1;
        format!(".L{}_{}_{}", prefix, self.name, self.label_n)
    }

    fn place_label(&mut self, l: &str) {
        let _ = writeln!(self.body, "{l}:");
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Semantic(format!(
            "{}: {}",
            self.name,
            msg.into()
        )))
    }

    fn lookup_local(&self, name: &str) -> Option<&LocalVar> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(&mut self, name: &str, ty: Type, array: Option<u64>) -> LocalVar {
        let sz = match array {
            Some(n) => (ty.size() * n).div_ceil(8) * 8,
            None => 8,
        } as i64;
        self.next_off += sz;
        let v = LocalVar {
            off: self.next_off,
            ty,
            is_array: array.is_some(),
        };
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.to_string(), v.clone());
        v
    }

    /// Static type of an expression (defaulting to `long`).
    fn type_of(&self, e: &Expr) -> Type {
        match e {
            Expr::Str(_) => Type::Ptr(Box::new(Type::Char)),
            Expr::Var(n) => {
                if let Some(l) = self.lookup_local(n) {
                    if l.is_array {
                        Type::Ptr(Box::new(l.ty.clone()))
                    } else {
                        l.ty.clone()
                    }
                } else if let Some(g) = self.gen.globals.get(n) {
                    if g.is_array {
                        Type::Ptr(Box::new(g.ty.clone()))
                    } else {
                        g.ty.clone()
                    }
                } else {
                    Type::Long
                }
            }
            Expr::Un { op: UnOp::Deref, e } => self.type_of(e).deref(),
            Expr::Un { op: UnOp::Addr, e } => Type::Ptr(Box::new(self.type_of(e))),
            Expr::Un { .. } => Type::Long,
            Expr::Index { base, .. } => self.type_of(base).deref(),
            Expr::Bin {
                op: BinOp::Add | BinOp::Sub,
                l,
                r,
            } => {
                let lt = self.type_of(l);
                if matches!(lt, Type::Ptr(_)) {
                    lt
                } else {
                    let rt = self.type_of(r);
                    if matches!(rt, Type::Ptr(_)) {
                        rt
                    } else {
                        Type::Long
                    }
                }
            }
            Expr::Assign { target, .. } => self.type_of(target),
            Expr::Cond { t, .. } => self.type_of(t),
            _ => Type::Long,
        }
    }

    fn load_suffix(ty: &Type) -> &'static str {
        if ty.size() == 1 {
            "1"
        } else {
            "8"
        }
    }

    /// Emits code leaving the *address* of lvalue `e` in r0.
    fn emit_addr(&mut self, e: &Expr) -> Result<Type, CompileError> {
        match e {
            Expr::Var(n) => {
                if let Some(l) = self.lookup_local(n).cloned() {
                    self.emit(format!("lea r0, [fp-{}]", l.off));
                    Ok(l.ty)
                } else if let Some(g) = self.gen.globals.get(n) {
                    let ty = g.ty.clone();
                    self.emit(format!("la r0, {n}"));
                    Ok(ty)
                } else {
                    self.err(format!("unknown variable `{n}`"))
                }
            }
            Expr::Un { op: UnOp::Deref, e } => {
                let t = self.type_of(e).deref();
                self.eval(e)?;
                Ok(t)
            }
            Expr::Index { base, idx } => {
                let elem = self.type_of(base).deref();
                self.eval(base)?;
                self.emit("push r0");
                self.eval(idx)?;
                if elem.size() > 1 {
                    self.emit(format!("shl r0, {}", elem.size().trailing_zeros()));
                }
                self.emit("pop r1");
                self.emit("add r0, r1");
                Ok(elem)
            }
            _ => self.err("expression is not an lvalue"),
        }
    }

    fn emit_bool_from_flags(&mut self, jcc: &str) {
        let lt = self.label("true");
        self.emit("mov r0, 1");
        self.emit(format!("{jcc} {lt}"));
        self.emit("mov r0, 0");
        self.place_label(&lt);
    }

    fn apply_bin(&mut self, op: BinOp, scale_r_by: u64) -> Result<(), CompileError> {
        // Left value in r1, right in r0; result to r0.
        if scale_r_by > 1 {
            self.emit(format!("shl r0, {}", scale_r_by.trailing_zeros()));
        }
        match op {
            BinOp::Add => {
                self.emit("add r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Sub => {
                self.emit("sub r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Mul => {
                self.emit("mul r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Div => {
                self.emit("div r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Mod => {
                self.emit("mod r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::And => {
                self.emit("and r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Or => {
                self.emit("or r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Xor => {
                self.emit("xor r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Shl => {
                self.emit("shl r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Shr => {
                self.emit("sar r1, r0");
                self.emit("mov r0, r1");
            }
            BinOp::Lt => {
                self.emit("cmp r1, r0");
                self.emit_bool_from_flags("jl");
            }
            BinOp::Le => {
                self.emit("cmp r1, r0");
                self.emit_bool_from_flags("jle");
            }
            BinOp::Gt => {
                self.emit("cmp r1, r0");
                self.emit_bool_from_flags("jg");
            }
            BinOp::Ge => {
                self.emit("cmp r1, r0");
                self.emit_bool_from_flags("jge");
            }
            BinOp::Eq => {
                self.emit("cmp r1, r0");
                self.emit_bool_from_flags("je");
            }
            BinOp::Ne => {
                self.emit("cmp r1, r0");
                self.emit_bool_from_flags("jne");
            }
            BinOp::LAnd | BinOp::LOr => unreachable!("short-circuit handled in eval"),
        }
        Ok(())
    }

    /// Evaluates `e` into r0.
    fn eval(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(v) => {
                self.emit(format!("mov r0, {v}"));
            }
            Expr::Str(s) => {
                let label = format!(".Lstr{}", self.gen.str_n);
                self.gen.str_n += 1;
                let mut lit = String::new();
                for &b in s {
                    match b {
                        b'\n' => lit.push_str("\\n"),
                        b'\t' => lit.push_str("\\t"),
                        b'"' => lit.push_str("\\\""),
                        b'\\' => lit.push_str("\\\\"),
                        0 => lit.push_str("\\0"),
                        b => lit.push(b as char),
                    }
                }
                let _ = writeln!(self.rodata, "{label}: .asciz \"{lit}\"");
                self.emit(format!("la r0, {label}"));
            }
            Expr::Var(n) => {
                if let Some(l) = self.lookup_local(n).cloned() {
                    if l.is_array {
                        self.emit(format!("lea r0, [fp-{}]", l.off));
                    } else {
                        self.emit(format!("ld{} r0, [fp-{}]", Self::load_suffix(&l.ty), l.off));
                    }
                } else if let Some(g) = self.gen.globals.get(n) {
                    let is_array = g.is_array;
                    let suffix = Self::load_suffix(&g.ty);
                    self.emit(format!("la r0, {n}"));
                    if !is_array {
                        self.emit(format!("ld{suffix} r0, [r0]"));
                    }
                } else if self.gen.known_funcs.contains_key(n) {
                    // Function designator decays to its address.
                    self.emit(format!("la r0, {n}"));
                } else {
                    return self.err(format!("unknown variable `{n}`"));
                }
            }
            Expr::Un { op, e } => match op {
                UnOp::Neg => {
                    self.eval(e)?;
                    self.emit("neg r0");
                }
                UnOp::BitNot => {
                    self.eval(e)?;
                    self.emit("not r0");
                }
                UnOp::LNot => {
                    self.eval(e)?;
                    self.emit("cmp r0, 0");
                    self.emit_bool_from_flags("je");
                }
                UnOp::Deref => {
                    let t = self.type_of(e).deref();
                    self.eval(e)?;
                    self.emit(format!("ld{} r0, [r0]", Self::load_suffix(&t)));
                }
                UnOp::Addr => match &**e {
                    Expr::Var(n)
                        if self.lookup_local(n).is_none()
                            && !self.gen.globals.contains_key(n) =>
                    {
                        // &function
                        self.emit(format!("la r0, {n}"));
                    }
                    lv => {
                        self.emit_addr(lv)?;
                    }
                },
            },
            Expr::Index { .. } => {
                let t = self.emit_addr(e)?;
                self.emit(format!("ld{} r0, [r0]", Self::load_suffix(&t)));
            }
            Expr::Bin { op, l, r } => match op {
                BinOp::LAnd => {
                    let lf = self.label("and_false");
                    let le = self.label("and_end");
                    self.eval(l)?;
                    self.emit("cmp r0, 0");
                    self.emit(format!("je {lf}"));
                    self.eval(r)?;
                    self.emit("cmp r0, 0");
                    self.emit(format!("je {lf}"));
                    self.emit("mov r0, 1");
                    self.emit(format!("jmp {le}"));
                    self.place_label(&lf);
                    self.emit("mov r0, 0");
                    self.place_label(&le);
                }
                BinOp::LOr => {
                    let lt = self.label("or_true");
                    let le = self.label("or_end");
                    self.eval(l)?;
                    self.emit("cmp r0, 0");
                    self.emit(format!("jne {lt}"));
                    self.eval(r)?;
                    self.emit("cmp r0, 0");
                    self.emit(format!("jne {lt}"));
                    self.emit("mov r0, 0");
                    self.emit(format!("jmp {le}"));
                    self.place_label(&lt);
                    self.emit("mov r0, 1");
                    self.place_label(&le);
                }
                _ => {
                    // Pointer-arithmetic scaling.
                    let lt = self.type_of(l);
                    let rt = self.type_of(r);
                    let scale = match op {
                        BinOp::Add | BinOp::Sub
                            if matches!(lt, Type::Ptr(_)) && !matches!(rt, Type::Ptr(_)) =>
                        {
                            lt.pointee_size()
                        }
                        _ => 1,
                    };
                    // `int + ptr`: normalize so the pointer is on the left.
                    let (l, r, scale) =
                        if *op == BinOp::Add && matches!(rt, Type::Ptr(_)) && !matches!(lt, Type::Ptr(_)) {
                            (r, l, rt.pointee_size())
                        } else {
                            (l, r, scale)
                        };

                    // ipa-ra: hold the left value in a free caller-saved
                    // register across a simple direct call.
                    if let Some(hold) = self.ipa_hold_reg(r) {
                        self.eval(l)?;
                        self.emit(format!("mov r{hold}, r0"));
                        self.eval(r)?;
                        self.emit(format!("mov r1, r{hold}"));
                        self.apply_bin(*op, scale)?;
                    } else {
                        self.eval(l)?;
                        self.emit("push r0");
                        self.eval(r)?;
                        self.emit("pop r1");
                        self.apply_bin(*op, scale)?;
                    }
                }
            },
            Expr::Assign { target, value, op } => {
                match op {
                    None => {
                        // Fast path for scalar locals.
                        if let Expr::Var(n) = &**target {
                            if let Some(l) = self.lookup_local(n).cloned() {
                                if !l.is_array {
                                    self.eval(value)?;
                                    self.emit(format!(
                                        "st{} [fp-{}], r0",
                                        Self::load_suffix(&l.ty),
                                        l.off
                                    ));
                                    return Ok(());
                                }
                            }
                        }
                        let t = {
                            self.emit_addr(target)?
                        };
                        self.emit("push r0");
                        self.eval(value)?;
                        self.emit("pop r1");
                        self.emit(format!("st{} [r1], r0", Self::load_suffix(&t)));
                    }
                    Some(op) => {
                        let t = self.emit_addr(target)?;
                        let sfx = Self::load_suffix(&t);
                        self.emit("push r0");
                        self.emit("ld8 r1, [sp]");
                        self.emit(format!("ld{sfx} r0, [r1]"));
                        self.emit("push r0");
                        self.eval(value)?;
                        self.emit("pop r1");
                        // Pointer compound add/sub scales (p += n).
                        let scale = if matches!(t, Type::Ptr(_))
                            && matches!(op, BinOp::Add | BinOp::Sub)
                        {
                            t.pointee_size()
                        } else {
                            1
                        };
                        self.apply_bin(*op, scale)?;
                        self.emit("pop r1");
                        self.emit(format!("st{sfx} [r1], r0"));
                    }
                }
            }
            Expr::Call { callee, args } => {
                // Evaluate arguments left-to-right onto the stack.
                for a in args {
                    self.eval(a)?;
                    self.emit("push r0");
                }
                enum Kind {
                    Direct(String),
                    Indirect,
                }
                let kind = match &**callee {
                    Expr::Var(n)
                        if self.lookup_local(n).is_none()
                            && !self.gen.globals.contains_key(n) =>
                    {
                        Kind::Direct(n.clone())
                    }
                    other => {
                        self.eval(other)?;
                        self.emit("mov r7, r0");
                        Kind::Indirect
                    }
                };
                for i in (0..args.len()).rev() {
                    self.emit(format!("pop r{i}"));
                }
                match kind {
                    Kind::Direct(n) => self.emit(format!("call {n}")),
                    Kind::Indirect => self.emit("call r7"),
                }
            }
            Expr::Cond { c, t, f } => {
                let lf = self.label("cond_f");
                let le = self.label("cond_e");
                self.eval(c)?;
                self.emit("cmp r0, 0");
                self.emit(format!("je {lf}"));
                self.eval(t)?;
                self.emit(format!("jmp {le}"));
                self.place_label(&lf);
                self.eval(f)?;
                self.place_label(&le);
            }
        }
        Ok(())
    }

    /// Decides whether `e` is a call we can hold a value across in a
    /// caller-saved register (the ipa-ra optimization); returns the
    /// register number.
    fn ipa_hold_reg(&self, e: &Expr) -> Option<u16> {
        if !self.gen.opts.ipa_ra {
            return None;
        }
        let Expr::Call { callee, args } = e else {
            return None;
        };
        let Expr::Var(name) = &**callee else {
            return None;
        };
        if self.lookup_local(name).is_some() || self.gen.globals.contains_key(name) {
            return None;
        }
        let mask = *self.gen.compiled_masks.get(name)?;
        if !args
            .iter()
            .all(|a| matches!(a, Expr::Num(_) | Expr::Var(_)))
        {
            return None;
        }
        // Candidate caller-saved registers not used by the callee and not
        // needed for argument passing.
        for cand in [5u16, 4, 3, 2] {
            if (cand as usize) < args.len() {
                continue;
            }
            if mask & (1 << cand) == 0 {
                return Some(cand);
            }
        }
        None
    }

    fn eval_cond_jump_false(&mut self, c: &Expr, target: &str) -> Result<(), CompileError> {
        self.eval(c)?;
        self.emit("cmp r0, 0");
        self.emit(format!("je {target}"));
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Expr(e) => self.eval(e)?,
            Stmt::Decl {
                name,
                ty,
                array,
                init,
            } => {
                let v = self.declare(name, ty.clone(), *array);
                if let Some(init) = init {
                    if v.is_array {
                        return self.err("array initializers are not supported for locals");
                    }
                    self.eval(init)?;
                    self.emit(format!("st{} [fp-{}], r0", Self::load_suffix(&v.ty), v.off));
                }
            }
            Stmt::If { c, t, e } => {
                let lf = self.label("else");
                let le = self.label("endif");
                self.eval_cond_jump_false(c, &lf)?;
                self.scopes.push(HashMap::new());
                for s in t {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                if !e.is_empty() {
                    self.emit(format!("jmp {le}"));
                }
                self.place_label(&lf);
                if !e.is_empty() {
                    self.scopes.push(HashMap::new());
                    for s in e {
                        self.stmt(s)?;
                    }
                    self.scopes.pop();
                    self.place_label(&le);
                }
            }
            Stmt::While { c, body } => {
                let lh = self.label("while");
                let le = self.label("wend");
                self.place_label(&lh.clone());
                self.eval_cond_jump_false(c, &le)?;
                self.breaks.push(le.clone());
                self.continues.push(lh.clone());
                self.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                self.continues.pop();
                self.breaks.pop();
                self.emit(format!("jmp {lh}"));
                self.place_label(&le);
            }
            Stmt::For { init, c, step, body } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let lh = self.label("for");
                let lc = self.label("fstep");
                let le = self.label("fend");
                self.place_label(&lh.clone());
                if let Some(c) = c {
                    self.eval_cond_jump_false(c, &le)?;
                }
                self.breaks.push(le.clone());
                self.continues.push(lc.clone());
                self.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                self.continues.pop();
                self.breaks.pop();
                self.place_label(&lc);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.emit(format!("jmp {lh}"));
                self.place_label(&le);
                self.scopes.pop();
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.eval(e)?;
                } else {
                    self.emit("mov r0, 0");
                }
                self.emit(format!("jmp .Lret_{}", self.name));
            }
            Stmt::Break => {
                let Some(l) = self.breaks.last().cloned() else {
                    return self.err("`break` outside loop or switch");
                };
                self.emit(format!("jmp {l}"));
            }
            Stmt::Continue => {
                let Some(l) = self.continues.last().cloned() else {
                    return self.err("`continue` outside loop");
                };
                self.emit(format!("jmp {l}"));
            }
            Stmt::Switch { e, cases, default } => self.switch(e, cases, default)?,
            Stmt::Block(b) => {
                self.scopes.push(HashMap::new());
                for s in b {
                    self.stmt(s)?;
                }
                self.scopes.pop();
            }
        }
        Ok(())
    }

    fn switch(
        &mut self,
        e: &Expr,
        cases: &[(i64, Vec<Stmt>)],
        default: &[Stmt],
    ) -> Result<(), CompileError> {
        let lend = self.label("swend");
        let ldef = self.label("swdef");
        self.eval(e)?;
        let min = cases.iter().map(|(v, _)| *v).min().unwrap_or(0);
        let max = cases.iter().map(|(v, _)| *v).max().unwrap_or(0);
        let dense = cases.len() >= 4 && (max - min) < 3 * cases.len() as i64 && (max - min) < 512;
        let case_labels: Vec<String> = (0..cases.len()).map(|_| self.label("case")).collect();
        if dense {
            // Jump table: bounds check, indexed load, indirect jump.
            let tbl = self.label("tbl");
            if min != 0 {
                self.emit(format!("sub r0, {min}"));
            }
            self.emit(format!("cmp r0, {}", max - min + 1));
            self.emit(format!("jae {ldef}"));
            self.emit(format!("la r7, {tbl}"));
            self.emit("ld8 r7, [r7+r0*8]");
            self.emit("jmp r7");
            // Emit the table itself.
            let mut tbl_lines = format!("{tbl}:\n");
            for slot in 0..=(max - min) {
                let target = cases
                    .iter()
                    .position(|(v, _)| *v == min + slot)
                    .map(|i| case_labels[i].clone())
                    .unwrap_or_else(|| ldef.clone());
                let _ = writeln!(tbl_lines, "    .quad {target}");
            }
            if self.gen.opts.tables_in_text {
                // Interleave the table with the code (code/data ambiguity).
                self.body.push_str(&tbl_lines);
            } else {
                self.rodata.push_str(&tbl_lines);
            }
        } else {
            for (i, (v, _)) in cases.iter().enumerate() {
                self.emit(format!("cmp r0, {v}"));
                self.emit(format!("je {}", case_labels[i]));
            }
            self.emit(format!("jmp {ldef}"));
        }
        self.breaks.push(lend.clone());
        for (i, (_, body)) in cases.iter().enumerate() {
            self.place_label(&case_labels[i]);
            self.scopes.push(HashMap::new());
            for s in body {
                self.stmt(s)?;
            }
            self.scopes.pop();
            self.emit(format!("jmp {lend}"));
        }
        self.place_label(&ldef);
        self.scopes.push(HashMap::new());
        for s in default {
            self.stmt(s)?;
        }
        self.scopes.pop();
        self.breaks.pop();
        self.place_label(&lend);
        Ok(())
    }
}

impl Codegen {
    fn compile_func(&mut self, f: &Func) -> Result<String, CompileError> {
        let canary = match self.opts.canary {
            CanaryMode::Off => false,
            CanaryMode::All => true,
            CanaryMode::Arrays => has_local_array(&f.body),
        };
        let mut ctx = FnCtx {
            gen: self,
            name: f.name.clone(),
            scopes: vec![HashMap::new()],
            next_off: if canary { 8 } else { 0 },
            label_n: 0,
            breaks: Vec::new(),
            continues: Vec::new(),
            body: String::new(),
            rodata: String::new(),
        };

        // Frame: [fp-8] canary (if any), then params, then locals.
        let frame_raw = ctx.next_off + 8 * f.params.len() as i64 + scan_frame_size(&f.body);
        let frame = (frame_raw + 15) / 16 * 16;

        // Prologue.
        let mut head = String::new();
        if !f.is_static {
            let _ = writeln!(head, ".global {}", f.name);
        }
        let _ = writeln!(head, "{}:", f.name);
        let _ = writeln!(head, "    push fp");
        let _ = writeln!(head, "    mov fp, sp");
        if frame > 0 {
            let _ = writeln!(head, "    sub sp, {frame}");
        }
        if canary {
            // The canary pattern the static analyzer recognizes.
            let _ = writeln!(head, "    rdtls r6, 0x28");
            let _ = writeln!(head, "    st8 [fp-8], r6");
        }
        // Spill parameters.
        for (i, (pname, pty)) in f.params.iter().enumerate() {
            let v = ctx.declare(pname, pty.clone(), None);
            let _ = writeln!(head, "    st8 [fp-{}], r{}", v.off, i);
        }

        for s in &f.body {
            ctx.stmt(s)?;
        }
        // Implicit `return 0`.
        ctx.emit("mov r0, 0");
        let name = ctx.name.clone();
        ctx.place_label(&format!(".Lret_{name}"));
        if canary {
            ctx.emit("rdtls r6, 0x28");
            ctx.emit("ld8 r7, [fp-8]");
            ctx.emit("cmp r6, r7");
            ctx.emit(format!("jne .Lchk_{name}"));
        }
        ctx.emit("mov sp, fp");
        ctx.emit("pop fp");
        ctx.emit("ret");
        if canary {
            ctx.place_label(&format!(".Lchk_{name}"));
            ctx.emit("call __stack_chk_fail");
        }
        let body = std::mem::take(&mut ctx.body);
        let rodata = std::mem::take(&mut ctx.rodata);

        let mut out = head;
        out.push_str(&body);
        if !rodata.is_empty() {
            out.push_str(".section rodata\n");
            out.push_str(&rodata);
            out.push_str(".section text\n");
        }
        self.compiled_masks
            .insert(f.name.clone(), used_regs_mask(&out));
        Ok(out)
    }

    fn emit_global(&self, g: &Global, out: &mut String) -> Result<(), CompileError> {
        let elem = g.ty.size();
        match &g.init {
            GlobalInit::None => {
                let n = g.array.unwrap_or(1).max(1);
                let _ = writeln!(out, ".section bss");
                let _ = writeln!(out, ".global {}", g.name);
                let _ = writeln!(out, "{}: .space {}", g.name, (elem * n).max(8));
            }
            init => {
                let _ = writeln!(out, ".section data");
                let _ = writeln!(out, ".global {}", g.name);
                let _ = writeln!(out, "{}:", g.name);
                fn one(out: &mut String, elem: u64, init: &GlobalInit) -> Result<(), CompileError> {
                    match init {
                        GlobalInit::Int(v) => {
                            if elem == 1 {
                                let _ = writeln!(out, "    .byte {v}");
                            } else {
                                let _ = writeln!(out, "    .quad {v}");
                            }
                        }
                        GlobalInit::Addr(s) => {
                            let _ = writeln!(out, "    .quad {s}");
                        }
                        GlobalInit::Str(s) => {
                            let mut lit = String::new();
                            for &b in s {
                                match b {
                                    b'\n' => lit.push_str("\\n"),
                                    b'\t' => lit.push_str("\\t"),
                                    b'"' => lit.push_str("\\\""),
                                    b'\\' => lit.push_str("\\\\"),
                                    0 => lit.push_str("\\0"),
                                    b => lit.push(b as char),
                                }
                            }
                            let _ = writeln!(out, "    .asciz \"{lit}\"");
                        }
                        GlobalInit::List(items) => {
                            for i in items {
                                one(out, elem, i)?;
                            }
                        }
                        GlobalInit::None => {}
                    }
                    Ok(())
                }
                one(out, elem, init)?;
                // Pad explicit-size arrays whose initializer is shorter.
                if let (Some(n), GlobalInit::List(items)) = (g.array, init) {
                    if n > 0 && (n as usize) > items.len() {
                        let _ = writeln!(out, "    .space {}", (n as usize - items.len()) as u64 * elem);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Compiles MiniC source to JX-64 assembly text (to be fed to
/// `janitizer_asm::assemble`).
///
/// # Errors
///
/// Returns a [`CompileError`] on parse or semantic errors.
pub fn compile(src: &str, opts: &CompileOptions) -> Result<String, CompileError> {
    let prog = parse(src)?;
    let mut gen = Codegen {
        opts: opts.clone(),
        globals: HashMap::new(),
        known_funcs: HashMap::new(),
        compiled_masks: HashMap::new(),
        str_n: 0,
    };
    for g in &prog.globals {
        gen.globals.insert(
            g.name.clone(),
            GlobalVar {
                ty: g.ty.clone(),
                is_array: g.array.is_some(),
            },
        );
    }
    for f in &prog.funcs {
        gen.known_funcs.insert(f.name.clone(), f.is_static);
    }

    let mut out = String::new();
    out.push_str(".section text\n");
    if opts.emit_start {
        out.push_str(".global _start\n_start:\n    call main\n    ret\n");
    }
    for f in &prog.funcs {
        let code = gen.compile_func(f)?;
        out.push_str(&code);
    }
    for g in &prog.globals {
        gen.emit_global(g, &mut out)?;
    }
    Ok(out)
}
