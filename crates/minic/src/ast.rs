//! MiniC abstract syntax.

/// A MiniC type: `long`, `char`, or pointers to either.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// 64-bit signed integer.
    Long,
    /// 8-bit byte.
    Char,
    /// Pointer.
    Ptr(Box<Type>),
}

impl Type {
    /// Size of a value of this type in bytes.
    pub fn size(&self) -> u64 {
        match self {
            Type::Long | Type::Ptr(_) => 8,
            Type::Char => 1,
        }
    }

    /// For pointers and arrays-of-T, the size of the pointed-to element.
    pub fn pointee_size(&self) -> u64 {
        match self {
            Type::Ptr(t) => t.size(),
            // Scaling a non-pointer adds byte-wise; only happens for
            // integer arithmetic.
            _ => 1,
        }
    }

    /// The type obtained by dereferencing.
    pub fn deref(&self) -> Type {
        match self {
            Type::Ptr(t) => (**t).clone(),
            _ => Type::Long,
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // variant names mirror the source-level operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LAnd,
    LOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    LNot,
    /// Bitwise not (`~`).
    BitNot,
    /// Pointer dereference (`*`).
    Deref,
    /// Address-of (`&`).
    Addr,
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// String literal (decays to a `char*` into `.rodata`).
    Str(Vec<u8>),
    /// Variable reference (local, global, or function name).
    Var(String),
    /// Assignment, possibly compound (`x += e` has `op = Some(Add)`).
    Assign {
        /// Assigned lvalue.
        target: Box<Expr>,
        /// Right-hand side.
        value: Box<Expr>,
        /// Compound operator, if any.
        op: Option<BinOp>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        e: Box<Expr>,
    },
    /// Array indexing `base[idx]` (scaled by the element size).
    Index {
        /// Base pointer/array.
        base: Box<Expr>,
        /// Element index.
        idx: Box<Expr>,
    },
    /// Function call; `callee` is usually a [`Expr::Var`], but any
    /// expression yields an indirect call through its value.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments (at most 6).
        args: Vec<Expr>,
    },
    /// Conditional `c ? t : f`.
    Cond {
        /// Condition.
        c: Box<Expr>,
        /// Then-value.
        t: Box<Expr>,
        /// Else-value.
        f: Box<Expr>,
    },
}

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Element type.
        ty: Type,
        /// `Some(n)` for an `n`-element local array.
        array: Option<u64>,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Conditional.
    If {
        /// Condition.
        c: Expr,
        /// Then-branch.
        t: Vec<Stmt>,
        /// Else-branch.
        e: Vec<Stmt>,
    },
    /// While loop.
    While {
        /// Condition.
        c: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// For loop (desugared pieces).
    For {
        /// Initializer statement.
        init: Option<Box<Stmt>>,
        /// Loop condition.
        c: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Return with optional value.
    Return(Option<Expr>),
    /// Break out of the innermost loop or switch.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// Switch over an integer scrutinee. Cases do **not** fall through.
    Switch {
        /// Scrutinee.
        e: Expr,
        /// `(value, body)` per case.
        cases: Vec<(i64, Vec<Stmt>)>,
        /// Default body.
        default: Vec<Stmt>,
    },
    /// Braced block (scope).
    Block(Vec<Stmt>),
}

/// A global variable initializer.
#[derive(Clone, PartialEq, Debug)]
pub enum GlobalInit {
    /// Zero-initialized (`.bss`).
    None,
    /// Constant integer.
    Int(i64),
    /// String data (for `char name[] = "..."`).
    Str(Vec<u8>),
    /// Address of a function or global (`&f`) — an address-taken site.
    Addr(String),
    /// Brace list (arrays of constants and/or addresses).
    List(Vec<GlobalInit>),
}

/// A global variable.
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// `Some(n)` for arrays (0 means "sized by the initializer list").
    pub array: Option<u64>,
    /// Initializer.
    pub init: GlobalInit,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Parameters (at most 6).
    pub params: Vec<(String, Type)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// `static` functions get local (non-exported) symbols.
    pub is_static: bool,
}

/// A parsed translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Globals in declaration order.
    pub globals: Vec<Global>,
    /// Functions in definition order.
    pub funcs: Vec<Func>,
}
