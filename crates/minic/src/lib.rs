//! # MiniC: the guest toolchain's compiler
//!
//! A small C-like language compiled to JX-64 assembly. It exists so the
//! workloads this reproduction runs are *compiled code* with the idioms
//! real compilers emit — stack canaries, jump tables, calling-convention
//! quirks — rather than hand-crafted toy assembly.
//!
//! Supported: `long`/`char` and pointers to them, one-dimensional arrays,
//! globals with initializer lists (including `&function` entries —
//! address-taken functions for CFI), all the usual operators with C
//! precedence (division/modulo are **unsigned**), `if`/`while`/`for`/
//! `switch` (dense switches become jump tables), function pointers and
//! indirect calls, string literals, and calls to undefined (extern)
//! functions resolved by the linker or PLT.
//!
//! ```
//! use janitizer_minic::{compile, CompileOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let asm = compile(
//!     "long main() { long s = 0; for (long i = 1; i <= 10; i++) s += i; return s; }",
//!     &CompileOptions { emit_start: true, ..CompileOptions::default() },
//! )?;
//! assert!(asm.contains("main:"));
//! # Ok(())
//! # }
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, Func, Global, GlobalInit, Program, Stmt, Type, UnOp};
pub use codegen::{compile, CanaryMode, CompileError, CompileOptions};
pub use lexer::{lex, LexError, SpannedTok, Tok};
pub use parser::{parse, ParseError};
