//! Recursive-descent / Pratt parser for MiniC.

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use std::fmt;

/// A parse error with source line.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

const KEYWORDS: &[&str] = &[
    "long", "char", "if", "else", "while", "for", "return", "break", "continue", "switch",
    "case", "default", "static",
];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => Ok(s),
            t => Err(ParseError {
                line: self.line(),
                message: format!("expected identifier, found {t}"),
            }),
        }
    }

    fn peek_type(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == "long" || s == "char")
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let base = if self.eat_kw("long") {
            Type::Long
        } else if self.eat_kw("char") {
            Type::Char
        } else {
            return self.err(format!("expected type, found {}", self.peek()));
        };
        let mut t = base;
        while self.eat_punct("*") {
            t = Type::Ptr(Box::new(t));
        }
        Ok(t)
    }

    // ---- expressions (Pratt) ----

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_cond()?;
        let op = match self.peek() {
            Tok::Punct("=") => None,
            Tok::Punct("+=") => Some(BinOp::Add),
            Tok::Punct("-=") => Some(BinOp::Sub),
            Tok::Punct("*=") => Some(BinOp::Mul),
            Tok::Punct("/=") => Some(BinOp::Div),
            Tok::Punct("%=") => Some(BinOp::Mod),
            Tok::Punct("&=") => Some(BinOp::And),
            Tok::Punct("|=") => Some(BinOp::Or),
            Tok::Punct("^=") => Some(BinOp::Xor),
            Tok::Punct("<<=") => Some(BinOp::Shl),
            Tok::Punct(">>=") => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let value = self.parse_assign()?;
        Ok(Expr::Assign {
            target: Box::new(lhs),
            value: Box::new(value),
            op,
        })
    }

    fn parse_cond(&mut self) -> Result<Expr, ParseError> {
        let c = self.parse_binary(0)?;
        if self.eat_punct("?") {
            let t = self.parse_expr()?;
            self.expect_punct(":")?;
            let f = self.parse_cond()?;
            Ok(Expr::Cond {
                c: Box::new(c),
                t: Box::new(t),
                f: Box::new(f),
            })
        } else {
            Ok(c)
        }
    }

    fn bin_prec(tok: &Tok) -> Option<(BinOp, u8)> {
        let (op, p) = match tok {
            Tok::Punct("||") => (BinOp::LOr, 1),
            Tok::Punct("&&") => (BinOp::LAnd, 2),
            Tok::Punct("|") => (BinOp::Or, 3),
            Tok::Punct("^") => (BinOp::Xor, 4),
            Tok::Punct("&") => (BinOp::And, 5),
            Tok::Punct("==") => (BinOp::Eq, 6),
            Tok::Punct("!=") => (BinOp::Ne, 6),
            Tok::Punct("<") => (BinOp::Lt, 7),
            Tok::Punct("<=") => (BinOp::Le, 7),
            Tok::Punct(">") => (BinOp::Gt, 7),
            Tok::Punct(">=") => (BinOp::Ge, 7),
            Tok::Punct("<<") => (BinOp::Shl, 8),
            Tok::Punct(">>") => (BinOp::Shr, 8),
            Tok::Punct("+") => (BinOp::Add, 9),
            Tok::Punct("-") => (BinOp::Sub, 9),
            Tok::Punct("*") => (BinOp::Mul, 10),
            Tok::Punct("/") => (BinOp::Div, 10),
            Tok::Punct("%") => (BinOp::Mod, 10),
            _ => return None,
        };
        Some((op, p))
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = Self::bin_prec(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Bin {
                op,
                l: Box::new(lhs),
                r: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Tok::Punct("-") => Some(UnOp::Neg),
            Tok::Punct("!") => Some(UnOp::LNot),
            Tok::Punct("~") => Some(UnOp::BitNot),
            Tok::Punct("*") => Some(UnOp::Deref),
            Tok::Punct("&") => Some(UnOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.parse_unary()?;
            return Ok(Expr::Un { op, e: Box::new(e) });
        }
        if self.eat_punct("++") {
            let e = self.parse_unary()?;
            return Ok(Expr::Assign {
                target: Box::new(e),
                value: Box::new(Expr::Num(1)),
                op: Some(BinOp::Add),
            });
        }
        if self.eat_punct("--") {
            let e = self.parse_unary()?;
            return Ok(Expr::Assign {
                target: Box::new(e),
                value: Box::new(Expr::Num(1)),
                op: Some(BinOp::Sub),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                if args.len() > 6 {
                    return self.err("at most 6 call arguments are supported");
                }
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                };
            } else if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    base: Box::new(e),
                    idx: Box::new(idx),
                };
            } else if self.eat_punct("++") {
                // Statement-position postfix increment; value semantics of
                // the pre-increment are accepted for MiniC.
                e = Expr::Assign {
                    target: Box::new(e),
                    value: Box::new(Expr::Num(1)),
                    op: Some(BinOp::Add),
                };
            } else if self.eat_punct("--") {
                e = Expr::Assign {
                    target: Box::new(e),
                    value: Box::new(Expr::Num(1)),
                    op: Some(BinOp::Sub),
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Num(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => Ok(Expr::Var(s)),
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            t => Err(ParseError {
                line: self.line(),
                message: format!("unexpected {t} in expression"),
            }),
        }
    }

    // ---- statements ----

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return self.err("unterminated block");
            }
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        // A declaration or expression, without the trailing `;` (used by
        // `for` headers).
        if self.peek_type() {
            let ty = self.parse_type()?;
            let name = self.ident()?;
            let array = if self.eat_punct("[") {
                let Tok::Int(n) = self.bump() else {
                    return self.err("array size must be an integer literal");
                };
                self.expect_punct("]")?;
                Some(n as u64)
            } else {
                None
            };
            let init = if self.eat_punct("=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            Ok(Stmt::Decl {
                name,
                ty,
                array,
                init,
            })
        } else {
            Ok(Stmt::Expr(self.parse_expr()?))
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.parse_expr()?;
            self.expect_punct(")")?;
            let t = if matches!(self.peek(), Tok::Punct("{")) {
                self.parse_block()?
            } else {
                vec![self.parse_stmt()?]
            };
            let e = if self.eat_kw("else") {
                if matches!(self.peek(), Tok::Punct("{")) {
                    self.parse_block()?
                } else {
                    vec![self.parse_stmt()?]
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { c, t, e });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let c = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = if matches!(self.peek(), Tok::Punct("{")) {
                self.parse_block()?
            } else {
                vec![self.parse_stmt()?]
            };
            return Ok(Stmt::While { c, body });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = self.parse_simple_stmt()?;
                self.expect_punct(";")?;
                Some(Box::new(s))
            };
            let c = if self.eat_punct(";") {
                None
            } else {
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let s = self.parse_simple_stmt()?;
                self.expect_punct(")")?;
                Some(Box::new(s))
            };
            let body = if matches!(self.peek(), Tok::Punct("{")) {
                self.parse_block()?
            } else {
                vec![self.parse_stmt()?]
            };
            return Ok(Stmt::For { init, c, step, body });
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("switch") {
            self.expect_punct("(")?;
            let e = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
            let mut default = Vec::new();
            let mut in_default = false;
            let mut current: Option<i64> = None;
            let mut body: Vec<Stmt> = Vec::new();
            loop {
                if self.eat_punct("}") {
                    break;
                }
                if self.eat_kw("case") {
                    if let Some(v) = current.take() {
                        cases.push((v, std::mem::take(&mut body)));
                    } else if in_default {
                        default = std::mem::take(&mut body);
                        in_default = false;
                    }
                    let neg = self.eat_punct("-");
                    let Tok::Int(v) = self.bump() else {
                        return self.err("case label must be an integer literal");
                    };
                    self.expect_punct(":")?;
                    current = Some(if neg { -v } else { v });
                    continue;
                }
                if self.eat_kw("default") {
                    if let Some(v) = current.take() {
                        cases.push((v, std::mem::take(&mut body)));
                    }
                    self.expect_punct(":")?;
                    in_default = true;
                    continue;
                }
                if current.is_none() && !in_default {
                    return self.err("statement before first `case`");
                }
                body.push(self.parse_stmt()?);
            }
            if let Some(v) = current.take() {
                cases.push((v, body));
            } else if in_default {
                default = body;
            }
            return Ok(Stmt::Switch { e, cases, default });
        }
        if matches!(self.peek(), Tok::Punct("{")) {
            return Ok(Stmt::Block(self.parse_block()?));
        }
        let s = self.parse_simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    // ---- top level ----

    fn parse_global_init(&mut self) -> Result<GlobalInit, ParseError> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.eat_punct("}") {
                loop {
                    items.push(self.parse_global_init()?);
                    if self.eat_punct("}") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            return Ok(GlobalInit::List(items));
        }
        if self.eat_punct("&") {
            return Ok(GlobalInit::Addr(self.ident()?));
        }
        let neg = self.eat_punct("-");
        match self.bump() {
            Tok::Int(v) => Ok(GlobalInit::Int(if neg { -v } else { v })),
            Tok::Str(s) if !neg => Ok(GlobalInit::Str(s)),
            Tok::Ident(s) if !neg && !KEYWORDS.contains(&s.as_str()) => Ok(GlobalInit::Addr(s)),
            t => Err(ParseError {
                line: self.line(),
                message: format!("bad global initializer: {t}"),
            }),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while !matches!(self.peek(), Tok::Eof) {
            let is_static = self.eat_kw("static");
            let ty = self.parse_type()?;
            let name = self.ident()?;
            if self.eat_punct("(") {
                // Function definition.
                let mut params = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        let pty = self.parse_type()?;
                        let pname = self.ident()?;
                        params.push((pname, pty));
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                if params.len() > 6 {
                    return self.err("at most 6 parameters are supported");
                }
                let body = self.parse_block()?;
                prog.funcs.push(Func {
                    name,
                    params,
                    body,
                    is_static,
                });
            } else {
                // Global variable.
                let array = if self.eat_punct("[") {
                    if self.eat_punct("]") {
                        Some(0)
                    } else {
                        let Tok::Int(n) = self.bump() else {
                            return self.err("array size must be an integer literal");
                        };
                        self.expect_punct("]")?;
                        Some(n as u64)
                    }
                } else {
                    None
                };
                let init = if self.eat_punct("=") {
                    self.parse_global_init()?
                } else {
                    GlobalInit::None
                };
                self.expect_punct(";")?;
                prog.globals.push(Global {
                    name,
                    ty,
                    array,
                    init,
                });
            }
        }
        Ok(prog)
    }
}

/// Parses a MiniC translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] with the 1-based source line on any lexical or
/// syntactic error.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        line: e.line,
        message: e.message,
    })?;
    Parser { toks, pos: 0 }.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_function() {
        let p = parse("long main() { return 42; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].body, vec![Stmt::Return(Some(Expr::Num(42)))]);
    }

    #[test]
    fn parse_params_and_types() {
        let p = parse("long f(long a, char *s, long **pp) { return a; }").unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1].1, Type::Ptr(Box::new(Type::Char)));
        assert_eq!(
            f.params[2].1,
            Type::Ptr(Box::new(Type::Ptr(Box::new(Type::Long))))
        );
    }

    #[test]
    fn precedence() {
        let p = parse("long f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(Expr::Bin { op: BinOp::Add, r, .. })) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(**r, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn globals_and_initializers() {
        let p = parse(
            "long x; long y = 5; long tbl[4]; long fns[] = {&f, &g}; char msg[] = \"hi\";\
             long f() { return 0; } long g() { return 1; }",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 5);
        assert_eq!(p.globals[1].init, GlobalInit::Int(5));
        assert_eq!(
            p.globals[3].init,
            GlobalInit::List(vec![
                GlobalInit::Addr("f".into()),
                GlobalInit::Addr("g".into())
            ])
        );
        assert_eq!(p.globals[4].init, GlobalInit::Str(b"hi".to_vec()));
    }

    #[test]
    fn control_flow() {
        let p = parse(
            "long f(long n) {\
               long s = 0;\
               for (long i = 0; i < n; i++) { s += i; }\
               while (s > 100) { s -= 1; if (s == 50) break; else continue; }\
               return s;\
             }",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn switch_cases() {
        let p = parse(
            "long f(long x) { switch (x) { case 1: return 10; case 2: return 20; default: return 0; } }",
        )
        .unwrap();
        let Stmt::Switch { cases, default, .. } = &p.funcs[0].body[0] else { panic!() };
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].0, 1);
        assert_eq!(default.len(), 1);
    }

    #[test]
    fn pointers_and_address_of() {
        let p = parse("long f(long *p) { *p = 1; return p[2] + *(p + 3); }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        let p2 = parse("long g() { long x; long *q = &x; return *q; }").unwrap();
        assert_eq!(p2.funcs.len(), 1);
    }

    #[test]
    fn compound_assignment_and_incdec() {
        let p = parse("long f() { long x = 0; x += 3; x <<= 1; x++; ++x; x--; return x; }");
        assert!(p.is_ok());
    }

    #[test]
    fn ternary() {
        let p = parse("long f(long a) { return a ? 1 : 2; }").unwrap();
        assert!(matches!(
            p.funcs[0].body[0],
            Stmt::Return(Some(Expr::Cond { .. }))
        ));
    }

    #[test]
    fn errors_have_lines() {
        let e = parse("long f() {\n return $; }").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("long f( { }").is_err());
        assert!(parse("long f() { case 1: ; }").is_err());
        assert!(parse("long f() { switch (1) { return 2; } }").is_err());
    }

    #[test]
    fn static_functions() {
        let p = parse("static long helper() { return 1; } long main() { return helper(); }")
            .unwrap();
        assert!(p.funcs[0].is_static);
        assert!(!p.funcs[1].is_static);
    }
}
