//! MiniC tokenizer.

use std::fmt;

/// A MiniC token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped bytes).
    Str(Vec<u8>),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// A lexical error.
#[derive(Clone, Debug)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<",
    ">", "=", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
];

/// Tokenizes MiniC source.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings/chars or stray bytes.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        continue 'outer;
                    }
                    i += 1;
                }
                return Err(LexError {
                    line,
                    message: "unterminated block comment".into(),
                });
            }
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                i += 2;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let v = i64::from_str_radix(&src[start + 2..i], 16).map_err(|e| LexError {
                    line,
                    message: format!("bad hex literal: {e}"),
                })?;
                out.push(SpannedTok { tok: Tok::Int(v), line });
            } else {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = src[start..i].parse().map_err(|e| LexError {
                    line,
                    message: format!("bad integer literal: {e}"),
                })?;
                out.push(SpannedTok { tok: Tok::Int(v), line });
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        // Char literal -> integer token.
        if c == b'\'' {
            i += 1;
            let v = if bytes.get(i) == Some(&b'\\') {
                i += 1;
                let e = *bytes.get(i).ok_or(LexError {
                    line,
                    message: "unterminated char literal".into(),
                })?;
                i += 1;
                match e {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'0' => 0,
                    b'\\' => b'\\',
                    b'\'' => b'\'',
                    _ => {
                        return Err(LexError {
                            line,
                            message: "bad escape in char literal".into(),
                        })
                    }
                }
            } else {
                let v = *bytes.get(i).ok_or(LexError {
                    line,
                    message: "unterminated char literal".into(),
                })?;
                i += 1;
                v
            };
            if bytes.get(i) != Some(&b'\'') {
                return Err(LexError {
                    line,
                    message: "unterminated char literal".into(),
                });
            }
            i += 1;
            out.push(SpannedTok {
                tok: Tok::Int(v as i64),
                line,
            });
            continue;
        }
        // String literal.
        if c == b'"' {
            i += 1;
            let mut s = Vec::new();
            loop {
                let b = *bytes.get(i).ok_or(LexError {
                    line,
                    message: "unterminated string literal".into(),
                })?;
                i += 1;
                match b {
                    b'"' => break,
                    b'\\' => {
                        let e = *bytes.get(i).ok_or(LexError {
                            line,
                            message: "unterminated string escape".into(),
                        })?;
                        i += 1;
                        s.push(match e {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'"' => b'"',
                            _ => {
                                return Err(LexError {
                                    line,
                                    message: "bad escape in string".into(),
                                })
                            }
                        });
                    }
                    b'\n' => {
                        return Err(LexError {
                            line,
                            message: "newline in string literal".into(),
                        })
                    }
                    b => s.push(b),
                }
            }
            out.push(SpannedTok { tok: Tok::Str(s), line });
            continue;
        }
        // Punctuation.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(SpannedTok { tok: Tok::Punct(p), line });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            line,
            message: format!("unexpected character `{}`", c as char),
        });
    }
    out.push(SpannedTok { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("long x = 42;"),
            vec![
                Tok::Ident("long".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn hex_char_string() {
        assert_eq!(toks("0xff")[0], Tok::Int(255));
        assert_eq!(toks("'A'")[0], Tok::Int(65));
        assert_eq!(toks("'\\n'")[0], Tok::Int(10));
        assert_eq!(toks("\"hi\\n\"")[0], Tok::Str(b"hi\n".to_vec()));
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("1 // c\n 2 /* d \n e */ 3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn multichar_operators_longest_match() {
        assert_eq!(
            toks("a <<= b << c <= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("@").is_err());
    }
}
