//! End-to-end JASan tests: MiniC programs, the preloaded redzone
//! allocator, canary poisoning, and the liveness soundness experiments.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_core::{run_hybrid, run_native, HybridOptions, RunOutcome};
use janitizer_jasan::{Jasan, JasanOptions, RT_MODULE};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CanaryMode, CompileOptions};
use janitizer_vm::{LoadOptions, ModuleStore, MINIMAL_LD_SO};

/// Builds a store with the program, a minimal libc layer, ld.so and the
/// JASan runtime.
fn store_for(src: &str, copts: &CompileOptions) -> ModuleStore {
    let mut store = ModuleStore::new();
    let asm = compile(src, copts).expect("compile");
    let obj = assemble("prog.s", &asm, &AsmOptions::default()).expect("asm");
    let crt = assemble(
        "crt.s",
        ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n\
         mov r0, 12\n la r1, msg\n mov r2, 23\n syscall\n\
         .section rodata\nmsg: .ascii \"stack smashing detected\"\n",
        &AsmOptions::default(),
    )
    .unwrap();
    store.add(link(&[obj, crt], &LinkOptions::executable("prog").needs("libjc0.so")).unwrap());
    // A tiny libc providing plain malloc/free (used in native runs where
    // the sanitizer runtime is not preloaded).
    let libc_src = "long malloc(long n) { return __sys_sbrk2((n + 7) / 8 * 8); } \
                    long free(long p) { return 0; }";
    let libc_c = compile(libc_src, &CompileOptions::default()).unwrap();
    let libc_o = assemble("libc.c.s", &libc_c, &AsmOptions { pic: true }).unwrap();
    let shim = assemble(
        "shim.s",
        ".section text\n.global __sys_sbrk2\n__sys_sbrk2:\n mov r1, r0\n mov r0, 2\n syscall\n ret\n",
        &AsmOptions { pic: true },
    )
    .unwrap();
    store.add(link(&[libc_o, shim], &LinkOptions::shared_object("libjc0.so")).unwrap());
    let ld = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
    store.add(link(&[ld], &LinkOptions::shared_object("ld.so")).unwrap());
    store.add(janitizer_jasan::runtime_module());
    store
}

fn sanitized_opts() -> HybridOptions {
    HybridOptions {
        load: LoadOptions {
            preload: vec![RT_MODULE.into()],
            ..LoadOptions::default()
        },
        ..HybridOptions::default()
    }
}

fn emit_start() -> CompileOptions {
    CompileOptions {
        emit_start: true,
        ..CompileOptions::default()
    }
}

#[test]
fn clean_heap_program_passes_with_same_result() {
    let src = "long main() {\
                 long p = malloc(80);\
                 for (long i = 0; i < 10; i++) *(p + i * 8) = i * i;\
                 long s = 0;\
                 for (long i = 0; i < 10; i++) s += *(p + i * 8);\
                 free(p);\
                 return s;\
               }";
    let store = store_for(src, &emit_start());
    let (native, _) = run_native(&store, "prog", &LoadOptions::default(), 0).unwrap();
    assert_eq!(native.code(), Some(285));
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert_eq!(run.outcome.code(), Some(285), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty(), "no false positives");
}

#[test]
fn heap_overflow_write_detected() {
    let src = "long main() {\
                 long p = malloc(40);\
                 for (long i = 0; i <= 5; i++) *(p + i * 8) = i;\
                 return 0;\
               }"; // i == 5 writes byte 40..48: one past the object
    let store = store_for(src, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    let RunOutcome::Violation(r) = &run.outcome else {
        panic!("expected violation, got {:?}", run.outcome);
    };
    assert_eq!(r.kind.as_str(), "heap-buffer-overflow");
    assert!(r.details.contains("WRITE"));
}

#[test]
fn heap_overflow_read_detected() {
    let src = "long main() { long p = malloc(16); return *(p + 16); }";
    let store = store_for(src, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    let RunOutcome::Violation(r) = &run.outcome else {
        panic!("expected violation, got {:?}", run.outcome);
    };
    assert_eq!(r.kind.as_str(), "heap-buffer-overflow");
    assert!(r.details.contains("READ"));
}

#[test]
fn heap_underflow_detected() {
    let src = "long main() { long p = malloc(16); return *(p - 8); }";
    let store = store_for(src, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "heap-buffer-overflow"),
        "{:?}",
        run.outcome
    );
}

#[test]
fn use_after_free_detected() {
    let src = "long main() {\
                 long p = malloc(32);\
                 *p = 7;\
                 free(p);\
                 return *p;\
               }";
    let store = store_for(src, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "heap-use-after-free"),
        "{:?}",
        run.outcome
    );
}

#[test]
fn unaligned_partial_granule_tail_detected() {
    // 13-byte object: byte 13 is in the same granule but out of bounds.
    let src = "long main() { long p = malloc(13); char *c = p; return c[13]; }";
    let store = store_for(src, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert!(matches!(&run.outcome, RunOutcome::Violation(_)), "{:?}", run.outcome);
    // In-bounds tail byte is fine.
    let src_ok = "long main() { long p = malloc(13); char *c = p; return c[12]; }";
    let store = store_for(src_ok, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert!(matches!(run.outcome, RunOutcome::Exited(_)), "{:?}", run.outcome);
}

#[test]
fn stack_canary_overflow_detected_at_access() {
    // Writing past a local array clobbers the canary slot; JASan reports
    // the *write* (stack-buffer-overflow), before the epilogue's own
    // canary check would fire.
    let copts = CompileOptions {
        emit_start: true,
        canary: CanaryMode::Arrays,
        ..CompileOptions::default()
    };
    let src = "long main() {\
                 char buf[16];\
                 for (long i = 0; i < 24; i++) buf[i] = 65;\
                 return buf[0];\
               }";
    let store = store_for(src, &copts);
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    let RunOutcome::Violation(r) = &run.outcome else {
        panic!("expected stack violation, got {:?}", run.outcome);
    };
    assert_eq!(r.kind.as_str(), "stack-buffer-overflow");
}

#[test]
fn clean_canary_function_has_no_false_positive() {
    let copts = CompileOptions {
        emit_start: true,
        canary: CanaryMode::All,
        ..CompileOptions::default()
    };
    let src = "long fill(long *a, long n) { for (long i = 0; i < n; i++) a[i] = i; return a[n-1]; }\
               long main() { long v[8]; return fill(v, 8) + fill(v, 8); }";
    let store = store_for(src, &copts);
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert_eq!(run.outcome.code(), Some(14), "{:?}", run.outcome);
    assert!(run.engine.reports.is_empty());
}

#[test]
fn dynamic_only_detects_the_same_heap_bug() {
    let src = "long main() { long p = malloc(24); return *(p + 24); }";
    let store = store_for(src, &emit_start());
    let opts = HybridOptions {
        dynamic_only: true,
        ..sanitized_opts()
    };
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &opts).unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "heap-buffer-overflow"),
        "dyn-only coverage: {:?}",
        run.outcome
    );
}

#[test]
fn overhead_ordering_native_hybrid_dyn() {
    // A memory-heavy loop: native < hybrid-full <= hybrid-base < dyn-only.
    let src = "long main() {\
                 long p = malloc(800);\
                 long s = 0;\
                 for (long r = 0; r < 40; r++)\
                   for (long i = 0; i < 100; i++) { *(p + i * 8) = i; s += *(p + i * 8); }\
                 free(p); return s % 256;\
               }";
    let store = store_for(src, &emit_start());
    let (native, nproc) = run_native(&store, "prog", &LoadOptions::default(), 0).unwrap();
    let native_code = native.code().unwrap();

    let full = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    let base = run_hybrid(&store, "prog", Jasan::hybrid_base(), &sanitized_opts()).unwrap();
    let dynamic = run_hybrid(
        &store,
        "prog",
        Jasan::hybrid(),
        &HybridOptions {
            dynamic_only: true,
            ..sanitized_opts()
        },
    )
    .unwrap();

    for (name, run) in [("full", &full), ("base", &base), ("dyn", &dynamic)] {
        assert_eq!(run.outcome.code(), Some(native_code), "{name}: {:?}", run.outcome);
    }
    assert!(full.cycles > nproc.cycles);
    assert!(
        full.cycles < base.cycles,
        "liveness optimization helps: {} vs {}",
        full.cycles,
        base.cycles
    );
    assert!(
        base.cycles <= dynamic.cycles,
        "hybrid no worse than dyn-only: {} vs {}",
        base.cycles,
        dynamic.cycles
    );
}

#[test]
fn ipa_ra_hazard_breaks_without_interprocedural_fix() {
    // `leaf` contains a memory access, so JASan instruments inside it;
    // with ipa-ra codegen the caller keeps `acc` in a caller-saved
    // register across the call. Without the inter-procedural fix the
    // check's scratch selection clobbers it.
    let copts = CompileOptions {
        emit_start: true,
        ipa_ra: true,
        ..CompileOptions::default()
    };
    let src = "long cell = 2;\
               long leaf(long x) { return cell + x; }\
               long main() { long acc = 30; return acc + leaf(10); }";
    let store = store_for(src, &copts);
    let (native, _) = run_native(&store, "prog", &LoadOptions::default(), 0).unwrap();
    assert_eq!(native.code(), Some(42));

    // Broken configuration: intra-procedural liveness only.
    let broken = Jasan::new(JasanOptions {
        interprocedural_fix: false,
        ..JasanOptions::default()
    });
    let run_broken = run_hybrid(&store, "prog", broken, &sanitized_opts()).unwrap();
    assert_ne!(
        run_broken.outcome.code(),
        Some(42),
        "without the fix the caller's held register is clobbered"
    );

    // Fixed configuration.
    let run_fixed = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert_eq!(run_fixed.outcome.code(), Some(42), "{:?}", run_fixed.outcome);
}

#[test]
fn cached_checks_cut_invariant_loop_cost() {
    // A hot loop accumulating into a register-held global address -- the
    // shape -O2 compilers emit; the access address is loop-invariant, so
    // cached checks should beat uncached ones.
    let src = ".section text\n.global _start\n_start:\n\
               la r8, cell\n mov r2, 0\n\
               loop:\n ld8 r3, [r8]\n add r3, r2\n st8 [r8], r3\n add r2, 1\n cmp r2, 2000\n jne loop\n\
               ld8 r0, [r8]\n mod r0, 100\n ret\n\
               .section data\ncell: .quad 0\n";
    let obj = assemble("hot.s", src, &AsmOptions::default()).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::executable("prog")).unwrap());
    let opts = HybridOptions::default(); // no allocator needed
    let cached = run_hybrid(&store, "prog", Jasan::hybrid(), &opts).unwrap();
    let uncached = run_hybrid(
        &store,
        "prog",
        Jasan::new(JasanOptions {
            cached_checks: false,
            ..JasanOptions::default()
        }),
        &opts,
    )
    .unwrap();
    assert_eq!(cached.outcome.code(), uncached.outcome.code());
    assert!(matches!(cached.outcome, RunOutcome::Exited(_)));
    assert!(
        cached.cycles < uncached.cycles,
        "cached {} vs uncached {}",
        cached.cycles,
        uncached.cycles
    );
}

#[test]
fn runtime_module_is_not_instrumented() {
    let src = "long main() { long p = malloc(8); free(p); return 0; }";
    let store = store_for(src, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert_eq!(run.outcome.code(), Some(0), "{:?}", run.outcome);
    // The allocator pokes poisoned shadow all the time; had it been
    // instrumented, its own redzone writes would self-report.
    assert!(run.engine.reports.is_empty());
}

/// Hand-written program with four adjacent same-base accesses (the
/// struct-field shape probe fusion targets) behind a malloc'd pointer.
fn adjacent_access_store(object_size: i64, top_disp: i64) -> ModuleStore {
    let src = format!(
        ".section text\n.global _start\n_start:\n\
         mov r0, {object_size}\n call malloc\n mov r8, r0\n\
         mov r3, 7\n\
         st8 [r8], r3\n st8 [r8+8], r3\n st8 [r8+16], r3\n st8 [r8+{top_disp}], r3\n\
         ld8 r0, [r8]\n ld8 r1, [r8+8]\n add r0, r1\n ret\n"
    );
    let obj = assemble("adj.s", &src, &AsmOptions::default()).unwrap();
    let crt = assemble(
        "crt.s",
        ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n ret\n",
        &AsmOptions::default(),
    )
    .unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj, crt], &LinkOptions::executable("prog").needs("libjc0.so")).unwrap());
    let libc_src = "long malloc(long n) { return __sys_sbrk2((n + 7) / 8 * 8); } \
                    long free(long p) { return 0; }";
    let libc_c = compile(libc_src, &CompileOptions::default()).unwrap();
    let libc_o = assemble("libc.c.s", &libc_c, &AsmOptions { pic: true }).unwrap();
    let shim = assemble(
        "shim.s",
        ".section text\n.global __sys_sbrk2\n__sys_sbrk2:\n mov r1, r0\n mov r0, 2\n syscall\n ret\n",
        &AsmOptions { pic: true },
    )
    .unwrap();
    store.add(link(&[libc_o, shim], &LinkOptions::shared_object("libjc0.so")).unwrap());
    let ld = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
    store.add(link(&[ld], &LinkOptions::shared_object("ld.so")).unwrap());
    store.add(janitizer_jasan::runtime_module());
    store
}

fn jasan_with(f: impl FnOnce(&mut JasanOptions)) -> Jasan {
    let mut opts = JasanOptions::default();
    f(&mut opts);
    Jasan::new(opts)
}

#[test]
fn fused_checks_keep_results_identical_and_engage() {
    // Clean run: four adjacent stores fuse into one lead walk; the
    // modeled state (outcome, cycles, probe runs) is byte-identical with
    // fusion on or off — fusion only changes host work, visible in the
    // checks_fused counter.
    let store = adjacent_access_store(32, 24);
    let fused = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    let unfused = run_hybrid(
        &store,
        "prog",
        jasan_with(|o| o.fuse_checks = false),
        &sanitized_opts(),
    )
    .unwrap();
    assert_eq!(fused.outcome.code(), Some(14), "{:?}", fused.outcome);
    assert_eq!(fused.outcome, unfused.outcome);
    assert_eq!(fused.cycles, unfused.cycles, "fusion is cost-model neutral");
    assert_eq!(fused.engine.probe_runs, unfused.engine.probe_runs);
    assert_eq!(fused.engine.reports.len(), unfused.engine.reports.len());
    assert!(fused.engine.checks_fused > 0, "adjacent checks fused");
    assert_eq!(unfused.engine.checks_fused, 0);
}

#[test]
fn fused_group_still_reports_follower_violation() {
    // The last member of the fused group is one granule past the object:
    // the lead's precomputed verdict for it is "fail", so the residual
    // check takes the full live path and reports exactly as the unfused
    // configuration does.
    let store = adjacent_access_store(24, 24);
    let fused = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    let unfused = run_hybrid(
        &store,
        "prog",
        jasan_with(|o| o.fuse_checks = false),
        &sanitized_opts(),
    )
    .unwrap();
    let RunOutcome::Violation(rf) = &fused.outcome else {
        panic!("expected violation, got {:?}", fused.outcome);
    };
    let RunOutcome::Violation(ru) = &unfused.outcome else {
        panic!("expected violation, got {:?}", unfused.outcome);
    };
    assert_eq!(rf.kind.as_str(), "heap-buffer-overflow");
    assert_eq!(rf.kind, ru.kind);
    assert_eq!(rf.details, ru.details);
    assert_eq!(fused.cycles, unfused.cycles);
}

#[test]
fn hoisted_invariant_checks_cut_counted_loop_cost() {
    // Same shape as the cached-check test, but the loop is *counted*
    // (r2 += 1 bounded by a cmp), so the invariant access's check hoists
    // out entirely: zero per-iteration cost instead of the cached hit.
    let src = ".section text\n.global _start\n_start:\n\
               la r8, cell\n mov r2, 0\n\
               loop:\n ld8 r3, [r8]\n add r3, r2\n st8 [r8], r3\n add r2, 1\n cmp r2, 2000\n jne loop\n\
               ld8 r0, [r8]\n mod r0, 100\n ret\n\
               .section data\ncell: .quad 0\n";
    let obj = assemble("hot.s", src, &AsmOptions::default()).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::executable("prog")).unwrap());
    let opts = HybridOptions::default(); // no allocator needed
    let hoisted = run_hybrid(&store, "prog", Jasan::hybrid(), &opts).unwrap();
    let cached_only = run_hybrid(
        &store,
        "prog",
        jasan_with(|o| o.hoist_invariants = false),
        &opts,
    )
    .unwrap();
    assert_eq!(hoisted.outcome.code(), cached_only.outcome.code());
    assert!(matches!(hoisted.outcome, RunOutcome::Exited(_)));
    assert!(
        hoisted.cycles < cached_only.cycles,
        "hoisting beats per-iteration cached hits: {} vs {}",
        hoisted.cycles,
        cached_only.cycles
    );
    assert!(hoisted.engine.checks_hoisted > 0, "hoisted fast path engaged");
    assert_eq!(cached_only.engine.checks_hoisted, 0);
    assert!(hoisted.engine.reports.is_empty());
}

#[test]
fn hoisted_check_still_reports_violations() {
    // The invariant address points one past the object (into the
    // redzone): the hoisted check's first (cold) execution runs the full
    // live check and reports exactly like the non-hoisted configuration.
    let src = ".section text\n.global _start\n_start:\n\
               mov r0, 16\n call malloc\n mov r8, r0\n add r8, 16\n\
               mov r2, 0\n\
               loop:\n ld8 r3, [r8]\n add r2, 1\n cmp r2, 100\n jne loop\n\
               mov r0, 0\n ret\n";
    let obj = assemble("uaf.s", src, &AsmOptions::default()).unwrap();
    let crt = assemble(
        "crt.s",
        ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n ret\n",
        &AsmOptions::default(),
    )
    .unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj, crt], &LinkOptions::executable("prog").needs("libjc0.so")).unwrap());
    let libc_src = "long malloc(long n) { return __sys_sbrk2((n + 7) / 8 * 8); } \
                    long free(long p) { return 0; }";
    let libc_c = compile(libc_src, &CompileOptions::default()).unwrap();
    let libc_o = assemble("libc.c.s", &libc_c, &AsmOptions { pic: true }).unwrap();
    let shim = assemble(
        "shim.s",
        ".section text\n.global __sys_sbrk2\n__sys_sbrk2:\n mov r1, r0\n mov r0, 2\n syscall\n ret\n",
        &AsmOptions { pic: true },
    )
    .unwrap();
    store.add(link(&[libc_o, shim], &LinkOptions::shared_object("libjc0.so")).unwrap());
    let ld = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
    store.add(link(&[ld], &LinkOptions::shared_object("ld.so")).unwrap());
    store.add(janitizer_jasan::runtime_module());

    let hoisted = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    let plain = run_hybrid(
        &store,
        "prog",
        jasan_with(|o| o.hoist_invariants = false),
        &sanitized_opts(),
    )
    .unwrap();
    let RunOutcome::Violation(rh) = &hoisted.outcome else {
        panic!("expected violation, got {:?}", hoisted.outcome);
    };
    let RunOutcome::Violation(rp) = &plain.outcome else {
        panic!("expected violation, got {:?}", plain.outcome);
    };
    assert_eq!(rh.kind.as_str(), "heap-buffer-overflow");
    assert_eq!(rh.kind, rp.kind);
    assert_eq!(rh.details, rp.details);
}

#[test]
fn exit_code_and_stdout_preserved_under_sanitizer() {
    let src = "long write_str(long p, long n);\
               long main() { return 11; }";
    // Avoid the unused extern; simpler program with stdout via syscalls is
    // covered elsewhere. Just check exit code passthrough here.
    let src = src.replace("long write_str(long p, long n);", "");
    let store = store_for(&src, &emit_start());
    let run = run_hybrid(&store, "prog", Jasan::hybrid(), &sanitized_opts()).unwrap();
    assert_eq!(run.outcome.code(), Some(11));
}
