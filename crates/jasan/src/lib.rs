//! # JASan: the hybrid binary AddressSanitizer (paper §4.1)
//!
//! Detects memory-safety violations with ASan-style shadow memory and
//! redzones, implemented as a Janitizer [`SecurityPlugin`]:
//!
//! * **Heap**: full object protection. An LD_PRELOAD'ed guest allocator
//!   ([`runtime_module`]) surrounds every allocation with poisoned
//!   redzones and quarantines freed memory.
//! * **Stack**: frame-granularity protection via the compiler's canary —
//!   the static analyzer finds canary stores (Figure 6) and JASan poisons
//!   the canary slot after the prologue writes it, unpoisoning right
//!   before the epilogue re-checks it.
//! * **Checks**: every load/store is preceded by an inline shadow check.
//!   The **static pass** computes register and flag liveness so the
//!   dynamic modifier can skip dead spills (the hybrid-full optimization
//!   of Figure 8); the **dynamic fallback** instruments statically-unseen
//!   blocks conservatively, saving and restoring everything.
//!
//! The inline check genuinely consumes its scratch registers on guest
//! state, so the `ipa-ra` liveness hazard of §4.1.2 is architecturally
//! real here: disable [`JasanOptions::interprocedural_fix`] and programs
//! compiled with MiniC's `ipa_ra` option break — enable it and the
//! callee-side inbound-liveness analysis keeps them working.

mod rt;
mod shadow;

pub use rt::{runtime_module, runtime_module_with, RT_MODULE};
pub use shadow::{
    check_access, classify_poison, map_shadow, poison_range, shadow_addr, shadow_byte_label,
    shadow_mapped, shadow_window, unpoison_range, POISON_HEAP_FREED, POISON_HEAP_REDZONE,
    POISON_STACK_CANARY, SHADOW_BASE,
};

use janitizer_core::{Probe, ProbeResult, Report, RuleId, SecurityPlugin, StaticContext};
use janitizer_dbt::{
    DecodedBlock, JasanContext, ProbeClass, ProbeSite, SiteOrigin, TbItem, ToolContext,
    DEFAULT_MAX_REPORTS,
};
use janitizer_isa::{Instr, MemSize, Reg, TLS_CANARY_OFFSET};
use janitizer_obj::Image;
use janitizer_rules::RewriteRule;
use janitizer_vm::Process;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Rule: instrument the memory access at this instruction.
/// `data[0]` packs the dead-register mask (bits 0–15) and the
/// flags-live bit (bit 16). `data[1]` bit 0 marks loop-invariant
/// accesses eligible for cached checks; bit 1 additionally marks
/// accesses invariant in a *counted* loop (recognized induction
/// variable), eligible for hoisting the check out of the loop.
pub const RULE_MEM_ACCESS: RuleId = 1;
/// Rule: poison the canary slot; `data[0]` holds the fp displacement
/// (as i64).
pub const RULE_POISON_CANARY: RuleId = 2;
/// Rule: unpoison the canary slot before the epilogue check load.
pub const RULE_UNPOISON_CANARY: RuleId = 3;

/// JASan configuration; the defaults give the paper's "JASan-hybrid
/// (full)" configuration.
#[derive(Clone, Copy, Debug)]
pub struct JasanOptions {
    /// Use static liveness to elide dead spills and flag preservation
    /// (off = the conservative "hybrid (base)" of Figure 8).
    pub use_liveness: bool,
    /// Apply the inter-procedural fix for `ipa-ra`-style convention
    /// breaks (§4.1.2). Disabling it reproduces the soundness bug.
    pub interprocedural_fix: bool,
    /// Demote loop-invariant checks to cached checks (SCEV, §3.3.2).
    pub cached_checks: bool,
    /// Hoist checks that are invariant in a *counted* loop out of the
    /// loop body entirely: the in-loop probe costs zero on a cache hit
    /// (the check conceptually lives in the preheader) and re-runs the
    /// full check whenever the address or poison epoch changed.
    /// Requires `cached_checks`; part of the cost model, so it is
    /// always-on in both the traced and non-traced engine.
    pub hoist_invariants: bool,
    /// Fuse adjacent checks on the same base register (small
    /// displacement deltas) into one widened shadow walk: the group
    /// lead precomputes every follower's verdict through a
    /// granule-memoized read, and followers consume it after verifying
    /// address + poison epoch. Host-side execution strategy only — the
    /// modeled cost, architectural effects and reports are identical
    /// with fusion on or off.
    pub fuse_checks: bool,
    /// Poison stack canaries (frame-granularity stack protection).
    pub poison_canaries: bool,
}

impl Default for JasanOptions {
    fn default() -> JasanOptions {
        JasanOptions {
            use_liveness: true,
            interprocedural_fix: true,
            cached_checks: true,
            hoist_invariants: true,
            fuse_checks: true,
            poison_canaries: true,
        }
    }
}

/// Inline fast-path cost of a shadow check with no spills and no flag
/// preservation: lea, mov, shr, 1-byte load, cmp, branch.
const CHECK_BASE_COST: u64 = 10;
/// Cost of spilling + restoring one scratch register to TLS.
const SPILL_COST: u64 = 3;
/// Cost of preserving the flags around the check.
const FLAGS_COST: u64 = 3;
/// Fast-path cost of a cached (loop-invariant) check.
const CACHED_HIT_COST: u64 = 4;
/// Inline cost of canary poison/unpoison instrumentation.
const CANARY_COST: u64 = 5;

/// How a shadow check is specialized by the static facts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CheckMode {
    /// Ordinary full check on every execution.
    Plain,
    /// Loop-invariant: cached verdict, cheap hit path (SCEV §3.3.2).
    Cached,
    /// Counted-loop invariant: check hoisted out of the loop — a hit
    /// costs nothing and has no architectural effects at all.
    Hoisted,
}

/// One shadow check to build: the instruction, the liveness facts the
/// static pass proved, and the specialization mode.
#[derive(Clone, Copy)]
struct CheckReq {
    pc: u64,
    insn: Instr,
    dead: u16,
    flags_live: bool,
    mode: CheckMode,
    fallback: bool,
}

/// A follower verdict precomputed by a fused group's lead:
/// the address it was computed for, the first-granule shadow byte the
/// live sequence would read, the pass/fail verdict, and the poison
/// epoch (`Process::note_counter`) it is valid for.
#[derive(Clone, Copy)]
struct PreVal {
    addr: u64,
    sbyte: u64,
    pass: bool,
    epoch: u64,
}

/// Precomputed-verdict slots shared between a fused lead and its
/// residual followers (slot `k` belongs to follower `k`).
type GroupState = Rc<RefCell<Vec<Option<PreVal>>>>;

/// A check's place in a fused group.
enum CheckRole {
    /// Not fused: the ordinary standalone check.
    Solo,
    /// Group lead: runs its own check live and precomputes every
    /// follower through one granule-memoized shadow walk.
    Lead {
        state: GroupState,
        followers: Vec<janitizer_isa::MemRef>,
    },
    /// Group follower: consumes the lead's verdict when it verifiably
    /// matches this execution, falls back to the full live check
    /// otherwise.
    Residual { state: GroupState, index: usize },
}

/// Pre-lowering instrumentation plan: concrete items pass through,
/// checks carry their facts so the lowering pass can group them.
enum Planned {
    Item(TbItem),
    Guest(u64, Instr, u64),
    Check(CheckReq),
}

/// Capacity of a lead walk's shadow-read memo: a full group (8 members,
/// 64-byte disp span) touches well under this many distinct granules.
const MEMO_CAP: usize = 32;

/// Memoized 1-byte shadow read: within one lead walk, each shadow
/// granule is read from the VM at most once (a fixed-size buffer, so the
/// walk never allocates; shadow reads are pure, so an overflow simply
/// re-reads). `None` mirrors an unmapped-shadow read error.
fn memo_read(
    p: &mut Process,
    memo: &mut [(u64, Option<u64>); MEMO_CAP],
    len: &mut usize,
    saddr: u64,
) -> Option<u64> {
    if let Some(&(_, v)) = memo[..*len].iter().find(|(a, _)| *a == saddr) {
        return v;
    }
    let v = p.mem.read_int(saddr, 1).ok();
    if *len < MEMO_CAP {
        memo[*len] = (saddr, v);
        *len += 1;
    }
    v
}

/// Computes every follower's address, first shadow byte and verdict in
/// one memoized walk, mirroring [`shadow::check_access`] exactly
/// (including its treatment of unmapped shadow as clean). Observation
/// only: no register, flag or memory effects.
fn precompute_followers(p: &mut Process, state: &GroupState, followers: &[janitizer_isa::MemRef]) {
    let mut memo = [(0u64, None); MEMO_CAP];
    let mut memo_len = 0usize;
    let mut slots = state.borrow_mut();
    slots.clear();
    slots.resize(followers.len(), None);
    for (k, m) in followers.iter().enumerate() {
        let mut addr = p.cpu.reg(m.base).wrapping_add(m.disp as i64 as u64);
        if let Some(idx) = m.idx {
            addr = addr.wrapping_add(p.cpu.reg(idx) << m.scale);
        }
        let size = m.size.bytes();
        let sbyte = memo_read(p, &mut memo, &mut memo_len, shadow::shadow_addr(addr)).unwrap_or(0);
        let mut pass = true;
        let end = addr + size;
        let mut g = addr >> 3;
        while g << 3 < end {
            match memo_read(p, &mut memo, &mut memo_len, shadow::SHADOW_BASE + g) {
                // check_access treats an unmapped shadow granule as a
                // clean access and stops walking.
                None => break,
                Some(s) => {
                    let s = s as u8;
                    if s != 0 {
                        if s >= 0x80 {
                            pass = false;
                            break;
                        }
                        let g_start = g << 3;
                        let portion_end = end.min(g_start + 8) - g_start;
                        if portion_end > u64::from(s) {
                            pass = false;
                            break;
                        }
                    }
                }
            }
            g += 1;
        }
        slots[k] = Some(PreVal { addr, sbyte, pass, epoch: p.note_counter });
    }
}

/// The JASan plugin.
#[derive(Debug)]
pub struct Jasan {
    /// Configuration.
    pub opts: JasanOptions,
    /// Runtime-module range, excluded from instrumentation (ASan does not
    /// sanitize its own runtime).
    rt_range: Option<(u64, u64)>,
    /// Number of shadow-check probes emitted (diagnostics).
    pub checks_emitted: u64,
    /// Tool-side violation contexts recorded at check time, one per
    /// violation report, drained by the forensics layer. Shared with the
    /// check probes (which outlive `&mut self`).
    captures: Rc<RefCell<Vec<ToolContext>>>,
}

impl Jasan {
    /// Creates the plugin.
    pub fn new(opts: JasanOptions) -> Jasan {
        Jasan {
            opts,
            rt_range: None,
            checks_emitted: 0,
            captures: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// The paper's JASan-hybrid (full) configuration.
    pub fn hybrid() -> Jasan {
        Jasan::new(JasanOptions::default())
    }

    /// The conservative hybrid configuration of Figure 8 ("base"): rules
    /// from the static pass, but no liveness optimization.
    pub fn hybrid_base() -> Jasan {
        Jasan::new(JasanOptions {
            use_liveness: false,
            cached_checks: false,
            ..JasanOptions::default()
        })
    }

    fn in_rt(&self, addr: u64) -> bool {
        self.rt_range
            .map(|(lo, hi)| addr >= lo && addr < hi)
            .unwrap_or(false)
    }

    fn passthrough(block: &DecodedBlock) -> Vec<TbItem> {
        block
            .insns
            .iter()
            .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
            .collect()
    }

    /// Scratch selection: two registers, lowest dead first; missing
    /// ones are spilled to TLS slots (cost, but no clobber).
    /// Fixed preference order, as inline-instrumentation tools use:
    /// argument-class caller-saved registers first (they are most
    /// often dead mid-function), then the linker-scratch pair. The
    /// overlap with registers an `ipa-ra` caller may hold values in is
    /// exactly the hazard of paper §4.1.2.
    fn scratch_regs(&self, dead: u16) -> Vec<Reg> {
        const SCRATCH_PREF: [Reg; 8] = [
            Reg::R5,
            Reg::R4,
            Reg::R3,
            Reg::R2,
            Reg::R6,
            Reg::R7,
            Reg::R1,
            Reg::R0,
        ];
        let mut scratch: Vec<Reg> = Vec::new();
        if self.opts.use_liveness {
            for r in SCRATCH_PREF {
                if dead & r.bit() != 0 && scratch.len() < 2 {
                    scratch.push(r);
                }
            }
        }
        scratch
    }

    /// Register mask a check's inline sequence may clobber.
    fn scratch_mask(&self, dead: u16) -> u16 {
        self.scratch_regs(dead).iter().fold(0, |a, r| a | r.bit())
    }

    /// Builds the shadow-check probe for one memory access.
    ///
    /// `req.dead` is the mask of registers instrumentation may clobber;
    /// the probe architecturally consumes up to two of them (lowest
    /// first) unless it has to spill, and clobbers the flags unless it
    /// preserves them — making unsound liveness *visible* in guest
    /// results. `role` is the check's place in a fused group; fusion
    /// changes host-side work only, never charges or effects.
    fn make_check(&mut self, req: CheckReq, role: CheckRole) -> TbItem {
        self.checks_emitted += 1;
        janitizer_telemetry::counter_add("jasan.checks_emitted", 1);
        let m = req.insn.mem_access().expect("rule on a memory access");
        let scratch = self.scratch_regs(req.dead);
        let spills = 2 - scratch.len() as u64;
        let preserve_flags = !self.opts.use_liveness || req.flags_live;
        // Fallback-generated checks use the simpler per-block analysis
        // and a less tuned sequence (paper 3.4.3).
        let full_cost = CHECK_BASE_COST
            + spills * SPILL_COST
            + if preserve_flags { FLAGS_COST } else { 0 }
            + if req.fallback { 3 } else { 0 };
        let (base_cost, miss_extra) = match req.mode {
            CheckMode::Cached => (CACHED_HIT_COST, full_cost - CACHED_HIT_COST + 2),
            // Hoisted: the in-loop probe is free on a hit; a miss runs
            // (and charges) the full check, as the preheader copy would.
            CheckMode::Hoisted => (0, full_cost),
            CheckMode::Plain => (full_cost, 0),
        };
        let mode = req.mode;
        let pc = req.pc;
        let cache: Rc<Cell<Option<(u64, u64)>>> = Rc::new(Cell::new(None));
        let size = m.size.bytes();
        let captures = self.captures.clone();
        let run = Box::new(move |p: &mut Process| -> ProbeResult {
            let mut addr = p.cpu.reg(m.base).wrapping_add(m.disp as i64 as u64);
            if let Some(idx) = m.idx {
                addr = addr.wrapping_add(p.cpu.reg(idx) << m.scale);
            }
            match mode {
                // Hoisted hit: the check conceptually ran in the loop
                // preheader — no cost, no effects, dynamically elided.
                CheckMode::Hoisted if cache.get() == Some((addr, p.note_counter)) => {
                    return ProbeResult::Hoisted;
                }
                // Cached (loop-invariant) check: a hit skips the shadow
                // load.
                CheckMode::Cached if cache.get() == Some((addr, p.note_counter)) => {
                    if let Some(&s0) = scratch.first() {
                        p.cpu.set_reg(s0, addr);
                    }
                    return ProbeResult::Ok;
                }
                _ => {}
            }
            // Fused residual fast path: consume the lead's precomputed
            // verdict, but only when it verifiably matches this live
            // execution — same address, same poison epoch, and a
            // passing verdict. Anything else re-runs the full check so
            // reports and captures stay byte-identical.
            if let CheckRole::Residual { state, index } = &role {
                if let Some(pre) = state.borrow()[*index] {
                    if pre.addr == addr && pre.epoch == p.note_counter && pre.pass {
                        if let Some(&s0) = scratch.first() {
                            p.cpu.set_reg(s0, shadow::shadow_addr(addr));
                        }
                        if let Some(&s1) = scratch.get(1) {
                            p.cpu.set_reg(s1, pre.sbyte);
                        }
                        if !preserve_flags {
                            p.cpu.flags = janitizer_isa::Flags {
                                zf: pre.sbyte == 0,
                                sf: false,
                                cf: false,
                                of: false,
                            };
                        }
                        cache.set(Some((addr, p.note_counter)));
                        return ProbeResult::Ok;
                    }
                }
            }
            let shadow_byte = p
                .mem
                .read_int(shadow::shadow_addr(addr), 1)
                .unwrap_or(0);
            // The inline sequence leaves its intermediates in the scratch
            // registers and its comparison result in the flags.
            if let Some(&s0) = scratch.first() {
                p.cpu.set_reg(s0, shadow::shadow_addr(addr));
            }
            if let Some(&s1) = scratch.get(1) {
                p.cpu.set_reg(s1, shadow_byte);
            }
            if !preserve_flags {
                p.cpu.flags = janitizer_isa::Flags {
                    zf: shadow_byte == 0,
                    sf: false,
                    cf: false,
                    of: false,
                };
            }
            // Fused lead: precompute every follower's verdict through
            // one granule-memoized shadow walk (observation only),
            // before its own verdict can cut the probe short.
            let fused = if let CheckRole::Lead { state, followers } = &role {
                precompute_followers(p, state, followers);
                followers.len() as u32
            } else {
                0
            };
            if let Some(kind) = shadow::check_access(p, addr, size) {
                janitizer_telemetry::counter_add("jasan.violations", 1);
                // Record the faulting-access context for forensics —
                // observation only, bounded the same way the engine
                // bounds its report vector so indexes stay aligned.
                let mut caps = captures.borrow_mut();
                if caps.len() < DEFAULT_MAX_REPORTS {
                    caps.push(ToolContext::Jasan(JasanContext {
                        access_addr: addr,
                        access_size: size,
                        is_write: m.is_store,
                        shadow_byte: shadow_byte as u8,
                        rows: shadow::shadow_window(p, addr, 5),
                    }));
                }
                drop(caps);
                return ProbeResult::Violation(Report {
                    pc,
                    kind,
                    details: format!(
                        "{} of size {} at {:#x} (shadow {:#04x})",
                        if m.is_store { "WRITE" } else { "READ" },
                        size,
                        addr,
                        shadow_byte
                    ),
                });
            }
            cache.set(Some((addr, p.note_counter)));
            match mode {
                CheckMode::Cached | CheckMode::Hoisted => ProbeResult::Extra(miss_extra),
                CheckMode::Plain if fused > 0 => ProbeResult::Fused(fused),
                CheckMode::Plain => ProbeResult::Ok,
            }
        });
        TbItem::Probe(Probe {
            cost: base_cost,
            run,
            site: Some(ProbeSite {
                tool: "jasan",
                kind: "shadow-check",
                pc,
                class: ProbeClass::Inline,
                origin: if req.fallback {
                    SiteOrigin::Dynamic
                } else {
                    SiteOrigin::Static
                },
            }),
        })
    }

    fn make_canary_probe(&self, pc: u64, fp_disp: i32, poison: bool, origin: SiteOrigin) -> TbItem {
        let run = Box::new(move |p: &mut Process| -> ProbeResult {
            let slot = p.cpu.reg(Reg::FP).wrapping_add(fp_disp as i64 as u64);
            if poison {
                shadow::poison_range(p, slot, 8, shadow::POISON_STACK_CANARY);
            } else {
                shadow::unpoison_range(p, slot & !7, 8);
            }
            p.note_counter += 1;
            ProbeResult::Ok
        });
        TbItem::Probe(Probe {
            cost: CANARY_COST,
            run,
            site: Some(ProbeSite {
                tool: "jasan",
                kind: if poison {
                    "canary-poison"
                } else {
                    "canary-unpoison"
                },
                pc,
                class: ProbeClass::Inline,
                origin,
            }),
        })
    }

    /// Lowers a planned instrumentation stream into translated-block
    /// items, grouping runs of fusible checks (same base register, same
    /// index and scale, displacement within ±64 of the lead, at most 8
    /// members) into lead + residual probes. A group is broken by any
    /// intervening write to a member's address registers (guest
    /// instruction defs or a member check's own scratch clobbers) and
    /// by any non-check probe (canary probes poison shadow and advance
    /// the epoch). Shared by the static and dynamic paths; with
    /// `fuse_checks` off, every check lowers to a standalone probe.
    fn lower(&mut self, planned: Vec<Planned>) -> Vec<TbItem> {
        // Pass 1: assign fusion roles.
        let mut roles: Vec<Option<CheckRole>> = (0..planned.len()).map(|_| None).collect();
        let mut group: Vec<usize> = Vec::new();
        let mut defs_mask: u16 = 0;
        let mut lead_mem: Option<janitizer_isa::MemRef> = None;

        fn finalize(group: &mut Vec<usize>, roles: &mut [Option<CheckRole>], planned: &[Planned]) {
            if group.len() >= 2 {
                let state: GroupState = Rc::new(RefCell::new(Vec::new()));
                let followers: Vec<janitizer_isa::MemRef> = group[1..]
                    .iter()
                    .map(|&i| {
                        let Planned::Check(req) = &planned[i] else {
                            unreachable!("group members are checks")
                        };
                        req.insn.mem_access().expect("check on a memory access")
                    })
                    .collect();
                roles[group[0]] = Some(CheckRole::Lead { state: state.clone(), followers });
                for (k, &i) in group[1..].iter().enumerate() {
                    roles[i] = Some(CheckRole::Residual { state: state.clone(), index: k });
                }
            }
            group.clear();
        }

        for (i, pl) in planned.iter().enumerate() {
            match pl {
                Planned::Guest(_, insn, _) => {
                    if !group.is_empty() {
                        defs_mask |= insn.defs();
                    }
                }
                Planned::Item(TbItem::Probe(_)) => {
                    finalize(&mut group, &mut roles, &planned);
                }
                Planned::Item(_) => {}
                Planned::Check(req) => {
                    if !self.opts.fuse_checks || req.mode != CheckMode::Plain {
                        finalize(&mut group, &mut roles, &planned);
                        continue; // stays Solo
                    }
                    let m = req.insn.mem_access().expect("check on a memory access");
                    let addr_regs = m.base.bit() | m.idx.map_or(0, |r| r.bit());
                    let joins = match lead_mem {
                        Some(lm) if !group.is_empty() => {
                            m.base == lm.base
                                && m.idx == lm.idx
                                && m.scale == lm.scale
                                && (i64::from(m.disp) - i64::from(lm.disp)).abs() <= 64
                                && group.len() < 8
                                && defs_mask & addr_regs == 0
                        }
                        _ => false,
                    };
                    if !joins {
                        finalize(&mut group, &mut roles, &planned);
                        lead_mem = Some(m);
                        defs_mask = self.scratch_mask(req.dead);
                    } else {
                        defs_mask |= self.scratch_mask(req.dead);
                    }
                    group.push(i);
                }
            }
        }
        finalize(&mut group, &mut roles, &planned);

        // Pass 2: construct the items in their original order.
        let mut items = Vec::with_capacity(planned.len());
        for (i, pl) in planned.into_iter().enumerate() {
            match pl {
                Planned::Item(t) => items.push(t),
                Planned::Guest(pc, insn, next) => items.push(TbItem::Guest(pc, insn, next)),
                Planned::Check(req) => {
                    let role = roles[i].take().unwrap_or(CheckRole::Solo);
                    items.push(self.make_check(req, role));
                }
            }
        }
        items
    }
}

impl SecurityPlugin for Jasan {
    fn name(&self) -> &str {
        "jasan"
    }

    fn cache_key(&self) -> String {
        // The emitted rules depend on the options (liveness payloads,
        // cached-check eligibility, canary rules), so each configuration
        // caches separately. The version prefix is bumped whenever the
        // rule payload encoding changes (jasan2: data[1] grew the
        // counted-loop bit), so stale store entries miss instead of
        // decoding wrongly. `hoist_invariants`/`fuse_checks` are
        // consume-side options — the rule bytes do not depend on them.
        format!(
            "jasan2:l{}i{}c{}p{}",
            self.opts.use_liveness as u8,
            self.opts.interprocedural_fix as u8,
            self.opts.cached_checks as u8,
            self.opts.poison_canaries as u8
        )
    }

    fn static_pass(&self, image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
        if image.name == RT_MODULE {
            return Vec::new(); // never instrument the sanitizer runtime
        }
        let mut rules = Vec::new();
        let exempt = janitizer_analysis::canary_exempt_addrs(&ctx.canaries);
        // instr_addr -> invariant in a *counted* loop (hoistable).
        let invariant: std::collections::HashMap<u64, bool> = if self.opts.cached_checks {
            ctx.invariants.iter().map(|i| (i.instr_addr, i.counted)).collect()
        } else {
            Default::default()
        };
        for block in ctx.cfg.blocks.values() {
            for (addr, insn) in &block.insns {
                if insn.mem_access().is_none() {
                    continue;
                }
                if exempt.binary_search(addr).is_ok() {
                    // Canary accesses are guarded by poisoning, not checks.
                    janitizer_telemetry::counter_add("jasan.checks_elided", 1);
                    continue;
                }
                let mut dead = ctx.liveness.dead_regs_at(*addr, insn);
                if self.opts.interprocedural_fix {
                    // Registers live across an in-module call into this
                    // function (ipa-ra) are not actually dead here.
                    if let Some(f) = ctx.cfg.function_containing(*addr) {
                        if let Some(inbound) = ctx.liveness.inbound.get(&f.entry) {
                            dead &= !*inbound;
                        }
                    }
                }
                let flags_live = ctx.liveness.flags_live_at(*addr);
                let packed = dead as u64 | (u64::from(flags_live) << 16);
                let inv_bits = match invariant.get(addr) {
                    None => 0u64,
                    Some(false) => 1,
                    Some(true) => 1 | 2,
                };
                rules.push(
                    RewriteRule::new(RULE_MEM_ACCESS, block.start, *addr)
                        .with_data(0, packed)
                        .with_data(1, inv_bits),
                );
            }
        }
        if self.opts.poison_canaries {
            for site in &ctx.canaries {
                let poison_bb = ctx
                    .cfg
                    .block_containing(site.poison_at)
                    .map(|b| b.start)
                    .unwrap_or(site.poison_at);
                rules.push(
                    RewriteRule::new(RULE_POISON_CANARY, poison_bb, site.poison_at)
                        .with_data(0, site.slot_disp as i64 as u64),
                );
                let unpoison_bb = ctx
                    .cfg
                    .block_containing(site.check_load_addr)
                    .map(|b| b.start)
                    .unwrap_or(site.check_load_addr);
                rules.push(
                    RewriteRule::new(RULE_UNPOISON_CANARY, unpoison_bb, site.check_load_addr)
                        .with_data(0, site.slot_disp as i64 as u64),
                );
            }
        }
        rules
    }

    fn on_start(&mut self, proc: &mut Process) {
        if !shadow::shadow_mapped(&proc.mem) {
            shadow::map_shadow(&mut proc.mem).expect("shadow mapping");
        }
    }

    fn take_violation_contexts(&mut self) -> Vec<ToolContext> {
        std::mem::take(&mut *self.captures.borrow_mut())
    }

    fn on_module_load(
        &mut self,
        proc: &mut Process,
        module_id: usize,
        _rules: Option<&janitizer_rules::RuleTable>,
    ) {
        let m = &proc.modules[module_id];
        if m.image.name == RT_MODULE {
            self.rt_range = Some(m.range());
        }
    }

    fn instrument_static(
        &mut self,
        _proc: &mut Process,
        block: &DecodedBlock,
        rules: &janitizer_core::BlockRules<'_>,
    ) -> Vec<TbItem> {
        if self.in_rt(block.start) {
            return Self::passthrough(block);
        }
        let mut planned = Vec::new();
        for &(pc, insn, next) in &block.insns {
            let mut checked = false;
            for rule in rules.rules_for(pc) {
                match rule.id {
                    RULE_MEM_ACCESS => {
                        let dead = (rule.data[0] & 0xffff) as u16;
                        let flags_live = rule.data[0] >> 16 & 1 != 0;
                        let bits = rule.data[1];
                        let mode = if bits & 2 != 0
                            && self.opts.cached_checks
                            && self.opts.hoist_invariants
                        {
                            CheckMode::Hoisted
                        } else if bits & 1 != 0 && self.opts.cached_checks {
                            CheckMode::Cached
                        } else {
                            CheckMode::Plain
                        };
                        checked = true;
                        planned.push(Planned::Check(CheckReq {
                            pc,
                            insn,
                            dead,
                            flags_live,
                            mode,
                            fallback: false,
                        }));
                    }
                    RULE_POISON_CANARY => {
                        planned.push(Planned::Item(self.make_canary_probe(
                            pc,
                            rule.data[0] as i64 as i32,
                            true,
                            SiteOrigin::Static,
                        )));
                    }
                    RULE_UNPOISON_CANARY => {
                        planned.push(Planned::Item(self.make_canary_probe(
                            pc,
                            rule.data[0] as i64 as i32,
                            false,
                            SiteOrigin::Static,
                        )));
                    }
                    _ => {}
                }
            }
            // A memory access with no check rule was statically proven
            // safe (canary-exempt): record the elided site so the
            // profiler can count checks saved by static analysis.
            if insn.mem_access().is_some() && !checked {
                planned.push(Planned::Item(TbItem::Note(ProbeSite {
                    tool: "jasan",
                    kind: "shadow-check",
                    pc,
                    class: ProbeClass::Inline,
                    origin: SiteOrigin::Static,
                })));
            }
            planned.push(Planned::Guest(pc, insn, next));
        }
        self.lower(planned)
    }

    fn instrument_dynamic(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        if self.in_rt(block.start) {
            return Self::passthrough(block);
        }
        // The fallback performs its per-block analysis at translation
        // time; charge that one-time work (paper 3.4.3: "simpler and
        // lightweight run-time analysis").
        proc.cycles += 20 * block.insns.len() as u64;
        // Per-block canary detection (the fallback sees one block at a
        // time): prologue store -> poison after it; epilogue re-check ->
        // unpoison before its load and exempt that load.
        let mut poison_after: Option<(usize, i32)> = None;
        let mut unpoison_before: Option<(usize, i32)> = None;
        let mut exempt_idx: Option<usize> = None;
        if self.opts.poison_canaries {
            for i in 0..block.insns.len().saturating_sub(1) {
                let (_, a, _) = block.insns[i];
                let (_, b, _) = block.insns[i + 1];
                if let (
                    Instr::RdTls { rd, off },
                    Instr::St {
                        size: MemSize::B8,
                        rs,
                        base: Reg::FP,
                        disp,
                    },
                ) = (a, b)
                {
                    if off == TLS_CANARY_OFFSET && rd == rs && disp < 0 {
                        // Is this a prologue store or an epilogue check?
                        // Epilogues *load*; this is a store, so: prologue.
                        poison_after = Some((i + 1, disp));
                    }
                }
                if let (
                    Instr::RdTls { off, .. },
                    Instr::Ld {
                        size: MemSize::B8,
                        base: Reg::FP,
                        disp,
                        ..
                    },
                ) = (a, b)
                {
                    if off == TLS_CANARY_OFFSET && disp < 0 {
                        unpoison_before = Some((i + 1, disp));
                        exempt_idx = Some(i + 1);
                    }
                }
            }
        }
        let mut planned = Vec::new();
        for (i, &(pc, insn, next)) in block.insns.iter().enumerate() {
            if let Some((at, disp)) = unpoison_before {
                if i == at {
                    planned.push(Planned::Item(self.make_canary_probe(
                        pc,
                        disp,
                        false,
                        SiteOrigin::Dynamic,
                    )));
                }
            }
            let exempt = exempt_idx == Some(i);
            if insn.mem_access().is_some() && !exempt {
                // Conservative: no liveness — spill everything. The
                // fallback still fuses adjacent same-base checks; fusion
                // soundness does not depend on liveness information.
                planned.push(Planned::Check(CheckReq {
                    pc,
                    insn,
                    dead: 0,
                    flags_live: true,
                    mode: CheckMode::Plain,
                    fallback: true,
                }));
            }
            planned.push(Planned::Guest(pc, insn, next));
            if let Some((after, disp)) = poison_after {
                if i == after {
                    planned.push(Planned::Item(self.make_canary_probe(
                        pc,
                        disp,
                        true,
                        SiteOrigin::Dynamic,
                    )));
                }
            }
        }
        self.lower(planned)
    }
}
