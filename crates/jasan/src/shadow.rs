//! ASan-style shadow memory: layout and host-side helpers.
//!
//! One shadow byte guards eight application bytes:
//! `shadow(a) = SHADOW_BASE + (a >> 3)`. A shadow byte of 0 means fully
//! addressable, `1..=7` means only the first *k* bytes of the granule are
//! addressable, and values `>= 0x80` are poison markers identifying why
//! the granule is off-limits.

use janitizer_dbt::{ShadowRow, ViolationKind};
use janitizer_vm::{Memory, Perm, Process};

/// Base of the shadow mapping. Chosen so every application address below
/// 4 GiB maps to `SHADOW_BASE + (a >> 3) < 0x8000_0000`, which fits the
/// positive range of a 32-bit displacement — the inline check sequence
/// needs the shadow base as an immediate.
pub const SHADOW_BASE: u64 = 0x6000_0000;

/// Poison marker: heap left/right redzone.
pub const POISON_HEAP_REDZONE: u8 = 0xfa;
/// Poison marker: freed heap memory (use-after-free).
pub const POISON_HEAP_FREED: u8 = 0xfd;
/// Poison marker: stack canary slot (frame redzone).
pub const POISON_STACK_CANARY: u8 = 0xf1;

/// Shadow address of an application address.
#[inline]
pub fn shadow_addr(a: u64) -> u64 {
    SHADOW_BASE + (a >> 3)
}

/// Maps the shadow regions for the standard process layout. Each mapped
/// application area gets its own shadow region so backing storage grows
/// with use instead of being allocated up front.
pub fn map_shadow(mem: &mut Memory) -> Result<(), String> {
    use janitizer_vm::{HEAP_BASE, HEAP_MAX, MMAP_BASE, STACK_BASE, STACK_SIZE};
    let ranges: [(u64, u64, &str); 4] = [
        // Modules, bootstrap and everything below the shadow itself.
        (0, SHADOW_BASE, "shadow:low"),
        (HEAP_BASE, HEAP_BASE + HEAP_MAX, "shadow:heap"),
        (MMAP_BASE, STACK_BASE, "shadow:mmap"),
        (STACK_BASE, STACK_BASE + STACK_SIZE + 0x1000, "shadow:stack"),
    ];
    for (lo, hi, label) in ranges {
        mem.map(shadow_addr(lo), (hi - lo) >> 3, Perm::RW, label)?;
    }
    Ok(())
}

/// Whether the shadow mapping is present (probe before reading).
pub fn shadow_mapped(mem: &Memory) -> bool {
    mem.is_mapped(SHADOW_BASE, 1)
}

/// Poisons `[addr, addr+len)` with `value` (rounding outward to granule
/// boundaries for the interior, as ASan does for redzones).
pub fn poison_range(proc: &mut Process, addr: u64, len: u64, value: u8) {
    let first = addr >> 3;
    let last = (addr + len + 7) >> 3;
    for g in first..last {
        let _ = proc.mem.write_int(SHADOW_BASE + g, 1, value as u64);
    }
}

/// Unpoisons `[addr, addr+len)`; a trailing partial granule gets the
/// partial-validity count.
pub fn unpoison_range(proc: &mut Process, addr: u64, len: u64) {
    debug_assert_eq!(addr & 7, 0, "allocations are 8-aligned");
    let full = len / 8;
    let first = addr >> 3;
    for g in 0..full {
        let _ = proc.mem.write_int(SHADOW_BASE + first + g, 1, 0);
    }
    let rem = len % 8;
    if rem != 0 {
        let _ = proc.mem.write_int(SHADOW_BASE + first + full, 1, rem);
    }
}

/// The core access check: returns the violation kind for a `size`-byte
/// access at `addr`, or `None` when the access is clean. An unmapped
/// shadow (e.g. shadow-of-shadow) reads as unpoisoned, like ASan's
/// zero page.
pub fn check_access(proc: &mut Process, addr: u64, size: u64) -> Option<ViolationKind> {
    let end = addr + size;
    let mut g = addr >> 3;
    while g << 3 < end {
        let s = match proc.mem.read_int(SHADOW_BASE + g, 1) {
            Ok(v) => v as u8,
            Err(_) => return None,
        };
        if s != 0 {
            if s >= 0x80 {
                return Some(classify_poison(s));
            }
            // Partial granule: only the first `s` bytes are valid.
            let g_start = g << 3;
            let portion_end = end.min(g_start + 8) - g_start;
            if portion_end > s as u64 {
                return Some(ViolationKind::HeapBufferOverflow);
            }
        }
        g += 1;
    }
    None
}

/// Classifies a poison marker byte into its violation kind.
pub fn classify_poison(s: u8) -> ViolationKind {
    match s {
        POISON_HEAP_REDZONE => ViolationKind::HeapBufferOverflow,
        POISON_HEAP_FREED => ViolationKind::HeapUseAfterFree,
        POISON_STACK_CANARY => ViolationKind::StackBufferOverflow,
        _ => ViolationKind::InvalidAccess,
    }
}

/// Short human label for a shadow byte, used in the region-map legend of
/// forensic reports (`00` addressable, `01..07` partial, else the poison
/// class).
pub fn shadow_byte_label(s: u8) -> &'static str {
    match s {
        0 => "addressable",
        1..=7 => "partial",
        POISON_HEAP_REDZONE => "heap redzone",
        POISON_HEAP_FREED => "freed heap",
        POISON_STACK_CANARY => "stack canary",
        _ => "poisoned",
    }
}

/// Reads an ASan-report-style shadow window around `addr`: `rows` rows of
/// eight shadow bytes (64 application bytes per row), centred on the row
/// containing `addr`. Unmapped shadow granules read as `None`.
pub fn shadow_window(proc: &mut Process, addr: u64, rows: u64) -> Vec<ShadowRow> {
    let row_of = addr & !63; // 8 granules * 8 bytes
    let first = row_of.saturating_sub((rows / 2) * 64);
    (0..rows)
        .map(|i| {
            let base = first + i * 64;
            let shadow = (0..8)
                .map(|g| {
                    proc.mem
                        .read_int(shadow_addr(base + g * 8), 1)
                        .ok()
                        .map(|v| v as u8)
                })
                .collect();
            ShadowRow { base, shadow }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_vm::{LoadOptions, ModuleStore, Perm};

    fn blank_process() -> Process {
        // A process with only shadow + one data region.
        let store = ModuleStore::new();
        let mut p = janitizer_vm::load_process(
            &{
                let mut s = store.clone();
                let o = janitizer_asm::assemble(
                    "t.s",
                    ".section text\n.global _start\n_start:\n ret\n",
                    &janitizer_asm::AsmOptions::default(),
                )
                .unwrap();
                s.add(janitizer_link::link(&[o], &janitizer_link::LinkOptions::executable("t")).unwrap());
                s
            },
            "t",
            &LoadOptions::default(),
        )
        .unwrap();
        map_shadow(&mut p.mem).unwrap();
        p.mem.map(0x20_0000, 0x1000, Perm::RW, "play").unwrap();
        p
    }

    #[test]
    fn layout_fits_disp32_and_avoids_overlap() {
        assert!(shadow_addr(0xffff_ffff) < 0x8000_0000);
        assert!(SHADOW_BASE <= i32::MAX as u64);
        // Shadow of the app regions lies inside the shadow area.
        for a in [0x40_0000u64, 0x8000_0000, 0xc000_0000, 0xe00f_f000] {
            let s = shadow_addr(a);
            assert!((SHADOW_BASE..0x8000_0000).contains(&s), "{a:#x} -> {s:#x}");
        }
    }

    #[test]
    fn clean_memory_passes() {
        let mut p = blank_process();
        assert_eq!(check_access(&mut p, 0x20_0000, 8), None);
        assert_eq!(check_access(&mut p, 0x20_0004, 1), None);
    }

    #[test]
    fn poison_detects_and_classifies() {
        let mut p = blank_process();
        poison_range(&mut p, 0x20_0100, 32, POISON_HEAP_REDZONE);
        assert_eq!(check_access(&mut p, 0x20_0100, 1), Some(ViolationKind::HeapBufferOverflow));
        assert_eq!(check_access(&mut p, 0x20_011f, 8), Some(ViolationKind::HeapBufferOverflow));
        poison_range(&mut p, 0x20_0200, 8, POISON_HEAP_FREED);
        assert_eq!(check_access(&mut p, 0x20_0200, 4), Some(ViolationKind::HeapUseAfterFree));
        poison_range(&mut p, 0x20_0300, 8, POISON_STACK_CANARY);
        assert_eq!(check_access(&mut p, 0x20_0304, 2), Some(ViolationKind::StackBufferOverflow));
    }

    #[test]
    fn unpoison_restores_with_partial_tail() {
        let mut p = blank_process();
        poison_range(&mut p, 0x20_0400, 64, POISON_HEAP_REDZONE);
        unpoison_range(&mut p, 0x20_0400, 13); // 8 full + 5 partial
        assert_eq!(check_access(&mut p, 0x20_0400, 8), None);
        assert_eq!(check_access(&mut p, 0x20_0408, 5), None, "first 5 of granule ok");
        assert_eq!(
            check_access(&mut p, 0x20_0408, 8),
            Some(ViolationKind::HeapBufferOverflow),
            "reading past the 13-byte object trips"
        );
        assert_eq!(
            check_access(&mut p, 0x20_040d, 1),
            Some(ViolationKind::HeapBufferOverflow),
            "byte 13 is out of bounds"
        );
    }

    #[test]
    fn wide_access_spilling_into_next_granule() {
        let mut p = blank_process();
        // Object of 8 bytes, then poison.
        unpoison_range(&mut p, 0x20_0500, 8);
        poison_range(&mut p, 0x20_0508, 8, POISON_HEAP_REDZONE);
        assert_eq!(check_access(&mut p, 0x20_0500, 8), None);
        assert_eq!(
            check_access(&mut p, 0x20_0504, 8),
            Some(ViolationKind::HeapBufferOverflow),
            "8-byte access at +4 crosses into the redzone"
        );
    }

    #[test]
    fn unmapped_shadow_reads_clean() {
        let mut p = blank_process();
        // The shadow of the shadow is not mapped; checks inside the shadow
        // region must pass, not fault.
        assert_eq!(check_access(&mut p, SHADOW_BASE + 0x100, 8), None);
    }
}
