//! The JASan guest runtime: an LD_PRELOAD-interposed redzone allocator.
//!
//! Mirrors the paper's use of LLVM ASan's runtime library, diverted in
//! front of libc's allocator with LD_PRELOAD (§4.1): `malloc` places
//! 32-byte poisoned redzones around every object, `free` poisons the
//! whole object and never reuses it (an unbounded quarantine), and both
//! maintain the shadow **from guest code**, then `note()` the host so
//! cached checks can invalidate.

use crate::shadow::SHADOW_BASE;
use janitizer_asm::{assemble, AsmOptions};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CanaryMode, CompileOptions};
use janitizer_obj::Image;

/// Module name of the runtime, as used for LD_PRELOAD.
pub const RT_MODULE: &str = "libjasan_rt.so";

/// MiniC source of the allocator. Shadow-byte values must match
/// `crate::shadow` (0xfa redzone, 0xfd freed).
fn runtime_c_source(redzone: u64) -> String {
    format!(
        r#"
static long __shadow_set(long a, long len, long v) {{
    char *s = {SHADOW_BASE} + (a >> 3);
    long n = (len + 7) / 8;
    for (long i = 0; i < n; i++) s[i] = v;
    return 0;
}}

static long __shadow_clear(long a, long len) {{
    char *s = {SHADOW_BASE} + (a >> 3);
    long full = len / 8;
    for (long i = 0; i < full; i++) s[i] = 0;
    if (len % 8) s[full] = len % 8;
    return 0;
}}

long malloc(long n) {{
    if (n < 1) n = 1;
    long sz = (n + 7) / 8 * 8;
    long base = __sys_sbrk(sz + 2 * {redzone});
    __shadow_set(base, {redzone}, 0xfa);
    __shadow_clear(base + {redzone}, n);
    __shadow_set(base + {redzone} + sz, {redzone}, 0xfa);
    *(base + 8) = n;
    __sys_note();
    return base + {redzone};
}}

long free(long p) {{
    if (p == 0) return 0;
    long n = *(p - {redzone} + 8);
    long sz = (n + 7) / 8 * 8;
    __shadow_set(p, sz, 0xfd);
    __sys_note();
    return 0;
}}

long calloc(long count, long size) {{
    long n = count * size;
    long p = malloc(n);
    char *c = p;
    for (long i = 0; i < n; i++) c[i] = 0;
    return p;
}}

long realloc(long p, long n) {{
    long q = malloc(n);
    if (p) {{
        long old = *(p - {redzone} + 8);
        long copy = old < n ? old : n;
        char *src = p;
        char *dst = q;
        for (long i = 0; i < copy; i++) dst[i] = src[i];
        free(p);
    }}
    return q;
}}
"#
    )
}

/// Syscall shims used by the allocator.
const RT_SHIM: &str = "\
.section text
.global __sys_sbrk
__sys_sbrk:
    mov r1, r0
    mov r0, 2        ; SYS_SBRK
    syscall
    ret
.global __sys_note
__sys_note:
    mov r0, 13       ; SYS_NOTE
    syscall
    ret
";

/// Builds the runtime shared object with JASan's 32-byte redzones.
///
/// # Panics
///
/// Panics only on internal toolchain bugs (the sources are fixed).
pub fn runtime_module() -> Image {
    runtime_module_with(RT_MODULE, 32)
}

/// Builds an allocator runtime with a custom module name and redzone
/// width (the Memcheck-like baseline uses 16-byte redzones, which is why
/// it misses wider heap overflows in the Juliet comparison).
pub fn runtime_module_with(name: &str, redzone: u64) -> Image {
    let c = compile(
        &runtime_c_source(redzone),
        &CompileOptions {
            canary: CanaryMode::Off,
            ..CompileOptions::default()
        },
    )
    .expect("jasan rt compiles");
    let o1 = assemble("jasan_rt.c.s", &c, &AsmOptions { pic: true }).expect("jasan rt assembles");
    let o2 = assemble("jasan_rt_shim.s", RT_SHIM, &AsmOptions { pic: true }).expect("shim");
    link(&[o1, o2], &LinkOptions::shared_object(name)).expect("jasan rt links")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_builds_and_exports_allocator() {
        let img = runtime_module();
        assert!(img.pic && img.shared);
        for sym in ["malloc", "free", "calloc", "realloc"] {
            assert!(img.export(sym).is_some(), "missing export {sym}");
        }
        // Internal helpers must stay private so they never interpose.
        assert!(img.export("__shadow_set").is_none());
    }
}
