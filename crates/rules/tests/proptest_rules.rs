//! Property tests for rewrite-rule serialization and table semantics.

use janitizer_rules::{RewriteRule, RuleFile, RuleTable, NO_OP};
use proptest::prelude::*;

fn arb_rule() -> impl Strategy<Value = RewriteRule> {
    (
        0u16..64,
        0u64..0x10_0000,
        0u64..0x10_0000,
        any::<[u64; 4]>(),
    )
        .prop_map(|(id, bb, instr, data)| RewriteRule {
            id,
            bb_addr: bb,
            instr_addr: instr,
            data,
        })
}

proptest! {
    /// Rule files round-trip through their binary encoding.
    #[test]
    fn file_roundtrip(
        module in "[a-z]{1,12}(\\.so)?",
        pic in any::<bool>(),
        rules in prop::collection::vec(arb_rule(), 0..200)
    ) {
        let file = RuleFile { module, pic, fingerprint: 7, rules };
        let back = RuleFile::from_bytes(&file.to_bytes()).unwrap();
        prop_assert_eq!(file, back);
    }

    /// Corrupting any single byte of the header region is detected (magic
    /// or version).
    #[test]
    fn header_corruption_detected(flip in 0usize..8) {
        let file = RuleFile {
            module: "m".into(),
            pic: false,
            fingerprint: 0xfeed,
            rules: vec![RewriteRule::no_op(0x10)],
        };
        let mut bytes = file.to_bytes();
        bytes[flip] ^= 0xa5;
        prop_assert!(RuleFile::from_bytes(&bytes).is_err());
    }

    /// Table lookups respect the load bias exactly: every rule's adjusted
    /// block hits, no unadjusted block hits (when the bias is non-zero and
    /// addresses stay below it).
    #[test]
    fn table_bias_exactness(
        rules in prop::collection::vec(arb_rule(), 1..100),
        bias in (0x100_0000u64..0x7000_0000)
    ) {
        let file = RuleFile {
            module: "m".into(),
            pic: true,
            fingerprint: 0,
            rules: rules.clone(),
        };
        let table = RuleTable::from_file(&file, bias);
        for r in &rules {
            prop_assert!(table.lookup_bb(r.bb_addr + bias).is_some());
            prop_assert!(table.lookup_bb(r.bb_addr).is_none());
            if r.id != NO_OP {
                prop_assert!(
                    table
                        .lookup_instr(r.instr_addr + bias)
                        .iter()
                        .any(|x| x.id == r.id && x.data == r.data)
                );
            }
        }
        prop_assert_eq!(table.len(), rules.len());
    }

    /// Rules within a block come out sorted by instruction address.
    #[test]
    fn block_rules_sorted(mut rules in prop::collection::vec(arb_rule(), 2..50)) {
        for r in &mut rules {
            r.bb_addr = 0x40; // same block
        }
        let file = RuleFile { module: "m".into(), pic: false, fingerprint: 0, rules };
        let table = RuleTable::from_file(&file, 0);
        let got = table.lookup_bb(0x40).unwrap();
        prop_assert!(got.windows(2).all(|w| w[0].instr_addr <= w[1].instr_addr));
    }
}
