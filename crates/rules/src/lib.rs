//! # Rewrite rules
//!
//! The interface between Janitizer's static analyzer and dynamic modifier
//! (paper §3.3.1, Figure 3). Each [`RewriteRule`] names a handler routine
//! (by [`RuleId`]), the basic block and instruction it applies to, and up
//! to four words of payload. Rules are serialized to a per-module
//! [`RuleFile`] ("recorded in separate files for each binary module") and
//! loaded at run time into a per-module [`RuleTable`] whose addresses are
//! adjusted by the module's load bias — the PIC/non-PIC support of §3.4.2
//! and Figure 5.
//!
//! Rule ids are tool-defined except [`NO_OP`]: the paper's *no-op rule*
//! (§3.3.4) marking a block as statically seen and proven to need no
//! modification, which lets the dynamic modifier distinguish
//! "statically safe" from "never analyzed".

use janitizer_obj::{cap_alloc, checksum64, FormatError, Reader, Writer};
use std::collections::HashMap;

/// Identifies the dynamic modifier's handler routine for a rule.
pub type RuleId = u16;

/// The universal "statically seen, no modification needed" marker rule.
pub const NO_OP: RuleId = 0;

/// Magic prefix of serialized rule files.
pub const RULE_MAGIC: &[u8; 4] = b"JRUL";
/// Current rule-file format version. Version 2 added the integrity
/// header: a content checksum over the payload plus the fingerprint of
/// the module the rules were computed for. Version-1 files decode to
/// [`FormatError::BadVersion`]`(1)` — the "stale rules" signal the
/// hybrid driver turns into per-module degradation.
pub const RULE_VERSION: u32 = 2;

/// One rewrite rule (Figure 3: RuleID, BB addr, instr addr, 4 data words).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RewriteRule {
    /// Handler id.
    pub id: RuleId,
    /// Address of the enclosing basic block (module-relative for PIC
    /// modules, absolute for non-PIC executables — exactly as the static
    /// analyzer saw it).
    pub bb_addr: u64,
    /// Address of the instruction the rule applies to.
    pub instr_addr: u64,
    /// Optional payload (Data1–Data4).
    pub data: [u64; 4],
}

impl RewriteRule {
    /// Convenience constructor for a rule without payload.
    pub fn new(id: RuleId, bb_addr: u64, instr_addr: u64) -> RewriteRule {
        RewriteRule {
            id,
            bb_addr,
            instr_addr,
            data: [0; 4],
        }
    }

    /// Builder-style payload setter.
    pub fn with_data(mut self, idx: usize, v: u64) -> RewriteRule {
        self.data[idx] = v;
        self
    }

    /// A no-op marker for a basic block.
    pub fn no_op(bb_addr: u64) -> RewriteRule {
        RewriteRule::new(NO_OP, bb_addr, bb_addr)
    }
}

/// All rewrite rules produced by one static-analyzer run over one module.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RuleFile {
    /// Name of the module the rules were computed for.
    pub module: String,
    /// Whether the module was PIC (addresses need load-time adjustment).
    pub pic: bool,
    /// Fingerprint of the module build the rules were computed for
    /// ([`janitizer_obj::Image::fingerprint`]); 0 when unknown. Carried
    /// in the integrity header so a loader can detect rules that were
    /// computed for a different build of a same-named module.
    pub fingerprint: u64,
    /// The rules, in no particular order.
    pub rules: Vec<RewriteRule>,
}

impl RuleFile {
    /// Creates an empty rule file for a module.
    pub fn new(module: impl Into<String>, pic: bool) -> RuleFile {
        RuleFile {
            module: module.into(),
            pic,
            fingerprint: 0,
            rules: Vec::new(),
        }
    }

    /// Serializes the rule file.
    ///
    /// Layout (version 2): `JRUL`, version `u32`, payload checksum
    /// `u64`, length-prefixed payload. The payload holds the module
    /// fingerprint, name, PIC flag and the rules; the checksum
    /// ([`janitizer_obj::checksum64`]) covers the whole payload so any
    /// byte corruption past the header surfaces as one typed error.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Writer::new();
        p.put_u64(self.fingerprint);
        p.put_str(&self.module);
        p.put_u8(self.pic as u8);
        p.put_u32(self.rules.len() as u32);
        for r in &self.rules {
            p.put_u32(r.id as u32);
            p.put_u64(r.bb_addr);
            p.put_u64(r.instr_addr);
            for d in r.data {
                p.put_u64(d);
            }
        }
        let payload = p.into_bytes();
        let mut w = Writer::with_header(RULE_MAGIC, RULE_VERSION);
        w.put_u64(checksum64(&payload));
        w.put_bytes(&payload);
        w.into_bytes()
    }

    /// Deserializes a rule file, verifying the integrity header.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] on bad magic, a stale version, truncation,
    /// or a checksum mismatch
    /// ([`FormatError::Invalid`]`{ what: "rule-file checksum" }`).
    pub fn from_bytes(bytes: &[u8]) -> Result<RuleFile, FormatError> {
        let (mut r, version) = Reader::with_header(bytes, RULE_MAGIC)?;
        if version != RULE_VERSION {
            return Err(FormatError::BadVersion(version));
        }
        let sum = r.u64()?;
        let payload = r.bytes()?;
        if checksum64(&payload) != sum {
            return Err(FormatError::Invalid {
                what: "rule-file checksum",
            });
        }
        let mut r = Reader::new(&payload);
        let fingerprint = r.u64()?;
        let module = r.str()?;
        let pic = r.u8()? != 0;
        let n = r.u32()?;
        let mut rules = Vec::with_capacity(cap_alloc(n, r.remaining(), 52));
        for _ in 0..n {
            let id = r.u32()? as RuleId;
            let bb_addr = r.u64()?;
            let instr_addr = r.u64()?;
            let mut data = [0u64; 4];
            for d in &mut data {
                *d = r.u64()?;
            }
            rules.push(RewriteRule {
                id,
                bb_addr,
                instr_addr,
                data,
            });
        }
        Ok(RuleFile {
            module,
            pic,
            fingerprint,
            rules,
        })
    }
}

/// The run-time, per-module hash table of rewrite rules, keyed by
/// **run-time** basic-block address (Figure 5).
///
/// Construction applies the module's load bias to every address, so "any
/// run-time address will exist in at most one hash table" even when PIC
/// modules were all analyzed at link address 0.
#[derive(Clone, Debug, Default)]
pub struct RuleTable {
    /// bb runtime address -> rules of that block, sorted by instr addr.
    by_bb: HashMap<u64, Vec<RewriteRule>>,
    /// instruction runtime address -> rules attached to that instruction.
    by_instr: HashMap<u64, Vec<RewriteRule>>,
    len: usize,
}

impl RuleTable {
    /// Builds the table from a rule file, adjusting addresses by
    /// `load_bias` (0 for non-PIC executables).
    pub fn from_file(file: &RuleFile, load_bias: u64) -> RuleTable {
        let mut by_bb: HashMap<u64, Vec<RewriteRule>> = HashMap::new();
        let mut by_instr: HashMap<u64, Vec<RewriteRule>> = HashMap::new();
        for r in &file.rules {
            let mut adj = *r;
            adj.bb_addr = r.bb_addr.wrapping_add(load_bias);
            adj.instr_addr = r.instr_addr.wrapping_add(load_bias);
            by_bb.entry(adj.bb_addr).or_default().push(adj);
            if adj.id != NO_OP {
                by_instr.entry(adj.instr_addr).or_default().push(adj);
            }
        }
        for v in by_bb.values_mut() {
            v.sort_by_key(|r| (r.instr_addr, r.id));
        }
        for v in by_instr.values_mut() {
            v.sort_by_key(|r| r.id);
        }
        let len = file.rules.len();
        RuleTable { by_bb, by_instr, len }
    }

    /// Looks up the rules for the basic block starting at the given
    /// run-time address. `None` is a **miss**: the block was never seen
    /// statically and must go to the dynamic analyzer (Figure 4, step 3a).
    pub fn lookup_bb(&self, runtime_bb_addr: u64) -> Option<&[RewriteRule]> {
        self.by_bb.get(&runtime_bb_addr).map(Vec::as_slice)
    }

    /// Rules attached to the instruction at the given run-time address
    /// (no-op markers excluded). Used when a translation-time block spans
    /// several statically-recovered blocks.
    pub fn lookup_instr(&self, runtime_instr_addr: u64) -> &[RewriteRule] {
        self.by_instr
            .get(&runtime_instr_addr)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct basic blocks with rules.
    pub fn blocks(&self) -> usize {
        self.by_bb.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> RuleFile {
        let mut f = RuleFile::new("libdemo.so", true);
        f.rules.push(RewriteRule::new(3, 0x100, 0x104).with_data(0, 7));
        f.rules.push(RewriteRule::new(3, 0x100, 0x10a));
        f.rules.push(RewriteRule::no_op(0x200));
        f.rules
            .push(RewriteRule::new(9, 0x300, 0x30c).with_data(3, u64::MAX));
        f
    }

    #[test]
    fn file_roundtrip() {
        let f = sample_file();
        let back = RuleFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn corrupt_file_rejected() {
        let mut b = sample_file().to_bytes();
        b[1] = b'X';
        assert!(RuleFile::from_bytes(&b).is_err());
        let b = sample_file().to_bytes();
        assert!(RuleFile::from_bytes(&b[..b.len() - 4]).is_err());
    }

    #[test]
    fn fingerprint_roundtrips() {
        let mut f = sample_file();
        f.fingerprint = 0xdead_beef_cafe_f00d;
        let back = RuleFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back.fingerprint, 0xdead_beef_cafe_f00d);
        assert_eq!(f, back);
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let f = sample_file();
        let mut b = f.to_bytes();
        // Past the 20-byte header (magic, version, checksum, payload len):
        // flip one payload byte and the checksum must catch it.
        let i = b.len() - 3;
        b[i] ^= 0x40;
        assert_eq!(
            RuleFile::from_bytes(&b).unwrap_err(),
            FormatError::Invalid {
                what: "rule-file checksum"
            }
        );
    }

    #[test]
    fn stale_version_rejected() {
        // A version-1 file (pre-integrity-header) must surface as
        // BadVersion — the driver's "stale rules" degradation signal.
        let mut w = Writer::with_header(RULE_MAGIC, 1);
        w.put_str("m");
        w.put_u8(0);
        w.put_u32(0);
        assert_eq!(
            RuleFile::from_bytes(&w.into_bytes()).unwrap_err(),
            FormatError::BadVersion(1)
        );
    }

    #[test]
    fn table_adjusts_pic_addresses() {
        let f = sample_file();
        let t = RuleTable::from_file(&f, 0x1000_0000);
        assert!(t.lookup_bb(0x100).is_none(), "unadjusted address misses");
        let rules = t.lookup_bb(0x1000_0100).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].instr_addr, 0x1000_0104);
        assert_eq!(rules[0].data[0], 7);
        assert_eq!(rules[1].instr_addr, 0x1000_010a);
    }

    #[test]
    fn non_pic_uses_zero_bias() {
        let mut f = sample_file();
        f.pic = false;
        let t = RuleTable::from_file(&f, 0);
        assert!(t.lookup_bb(0x100).is_some());
        assert_eq!(t.len(), 4);
        assert_eq!(t.blocks(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn noop_rule_hits_but_carries_no_payload() {
        let f = sample_file();
        let t = RuleTable::from_file(&f, 0);
        let rules = t.lookup_bb(0x200).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].id, NO_OP);
        // The crucial distinction: a no-op rule is a HIT (statically seen),
        // an absent block is a MISS (needs dynamic analysis).
        assert!(t.lookup_bb(0x999).is_none());
    }

    #[test]
    fn rules_sorted_within_block() {
        let mut f = RuleFile::new("m", false);
        f.rules.push(RewriteRule::new(1, 0x10, 0x30));
        f.rules.push(RewriteRule::new(1, 0x10, 0x10));
        f.rules.push(RewriteRule::new(1, 0x10, 0x20));
        let t = RuleTable::from_file(&f, 0);
        let addrs: Vec<u64> = t.lookup_bb(0x10).unwrap().iter().map(|r| r.instr_addr).collect();
        assert_eq!(addrs, vec![0x10, 0x20, 0x30]);
    }
}
