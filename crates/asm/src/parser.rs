//! Line-oriented parser and two-pass encoder.

use janitizer_isa::{AluOp, Cc, Instr, MemSize, Reg};
use janitizer_obj::{Object, Reloc, RelocKind, Section, SectionKind, SymBind, SymKind, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Assembler configuration.
#[derive(Clone, Debug, Default)]
pub struct AsmOptions {
    /// Assemble for position-independent linking: `la` becomes PC-relative
    /// instead of an absolute 64-bit immediate.
    pub pic: bool,
}

/// An assembly error with source position.
#[derive(Clone, Debug)]
pub struct AsmError {
    /// Source file name.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// A pending symbolic reference inside emitted bytes.
#[derive(Debug)]
struct Fixup {
    section: SectionKind,
    /// Offset of the 4- or 8-byte field to patch.
    offset: u64,
    kind: RelocKind,
    symbol: String,
    line: usize,
    /// Conditional branches must resolve within the object; there is no
    /// cross-module relocation for them.
    must_resolve: bool,
}

#[derive(Default)]
struct SectionBuf {
    data: Vec<u8>,
    bss_size: u64,
}

struct Assembler<'a> {
    file: String,
    opts: &'a AsmOptions,
    sections: HashMap<SectionKind, SectionBuf>,
    current: SectionKind,
    /// symbol name -> (section, offset)
    labels: HashMap<String, (SectionKind, u64)>,
    label_order: Vec<(String, SectionKind, u64)>,
    globals: Vec<String>,
    fixups: Vec<Fixup>,
    line: usize,
}

impl<'a> Assembler<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, AsmError> {
        Err(AsmError {
            file: self.file.clone(),
            line: self.line,
            message: msg.into(),
        })
    }

    fn cur(&mut self) -> &mut SectionBuf {
        self.sections.entry(self.current).or_default()
    }

    fn here(&mut self) -> u64 {
        let c = self.current;
        let buf = self.sections.entry(c).or_default();
        if c == SectionKind::Bss {
            buf.bss_size
        } else {
            buf.data.len() as u64
        }
    }

    fn emit(&mut self, i: Instr) {
        let buf = self.cur();
        i.encode(&mut buf.data);
    }

    fn define_label(&mut self, name: &str) -> Result<(), AsmError> {
        if self.labels.contains_key(name) {
            return self.err(format!("duplicate label `{name}`"));
        }
        let off = self.here();
        self.labels.insert(name.to_string(), (self.current, off));
        self.label_order.push((name.to_string(), self.current, off));
        Ok(())
    }
}

fn parse_reg(tok: &str) -> Option<Reg> {
    match tok {
        "sp" => Some(Reg::SP),
        "fp" => Some(Reg::FP),
        _ => {
            let n: usize = tok.strip_prefix('r')?.parse().ok()?;
            Reg::try_from_index(n)
        }
    }
}

fn parse_int(tok: &str) -> Option<i64> {
    let tok = tok.trim();
    if let Some(ch) = tok.strip_prefix('\'') {
        let ch = ch.strip_suffix('\'')?;
        let c = match ch {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\0" => 0,
            "\\\\" => b'\\',
            _ if ch.len() == 1 => ch.as_bytes()[0],
            _ => return None,
        };
        return Some(c as i64);
    }
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()? as i64
    } else {
        body.parse::<u64>().ok()? as i64
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

/// A parsed memory operand `[base]`, `[base±disp]`, `[base+idx*scale]`,
/// `[base+idx*scale±disp]`.
struct MemOperand {
    base: Reg,
    idx: Option<(Reg, u8)>,
    disp: i32,
}

fn parse_mem(tok: &str) -> Option<MemOperand> {
    let inner = tok.strip_prefix('[')?.strip_suffix(']')?;
    // Split on +/- while keeping signs for displacements.
    let mut base: Option<Reg> = None;
    let mut idx: Option<(Reg, u8)> = None;
    let mut disp: i64 = 0;
    let mut rest = inner;
    let mut first = true;
    while !rest.is_empty() {
        let (sign, term_start) = if first {
            (1i64, rest)
        } else if let Some(r) = rest.strip_prefix('+') {
            (1, r)
        } else if let Some(r) = rest.strip_prefix('-') {
            (-1, r)
        } else {
            return None;
        };
        first = false;
        let term_end = term_start
            .char_indices()
            .find(|&(i, c)| i > 0 && (c == '+' || c == '-'))
            .map(|(i, _)| i)
            .unwrap_or(term_start.len());
        let term = &term_start[..term_end];
        rest = &term_start[term_end..];
        if let Some((r, s)) = term.split_once('*') {
            let reg = parse_reg(r.trim())?;
            let scale: u64 = parse_int(s.trim())? as u64;
            let log2 = match scale {
                1 => 0,
                2 => 1,
                4 => 2,
                8 => 3,
                _ => return None,
            };
            if idx.is_some() || sign < 0 {
                return None;
            }
            idx = Some((reg, log2));
        } else if let Some(reg) = parse_reg(term.trim()) {
            if sign < 0 {
                return None;
            }
            if base.is_none() {
                base = Some(reg);
            } else if idx.is_none() {
                idx = Some((reg, 0));
            } else {
                return None;
            }
        } else {
            let v = parse_int(term.trim())?;
            disp += sign * v;
        }
    }
    Some(MemOperand {
        base: base?,
        idx,
        disp: i32::try_from(disp).ok()?,
    })
}

fn split_operands(s: &str) -> Vec<String> {
    // Split on commas not inside brackets or quotes.
    let mut out = Vec::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 && !in_str => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Divu,
        "mod" => AluOp::Modu,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "cmp" => AluOp::Cmp,
        "test" => AluOp::Test,
        _ => return None,
    })
}

fn cond_code(m: &str) -> Option<Cc> {
    Some(match m {
        "je" => Cc::Eq,
        "jne" => Cc::Ne,
        "jl" => Cc::Lt,
        "jle" => Cc::Le,
        "jg" => Cc::Gt,
        "jge" => Cc::Ge,
        "jb" => Cc::B,
        "jae" => Cc::Ae,
        _ => return None,
    })
}

fn mem_size(suffix: &str) -> Option<MemSize> {
    Some(match suffix {
        "1" => MemSize::B1,
        "2" => MemSize::B2,
        "4" => MemSize::B4,
        "8" => MemSize::B8,
        _ => return None,
    })
}

impl<'a> Assembler<'a> {
    /// Emits a branch-like instruction with a symbolic target. The rel32
    /// field is assumed to be the final 4 bytes of the encoding.
    fn emit_branch(&mut self, template: Instr, symbol: &str, reloc: RelocKind) {
        let must_resolve = matches!(template, Instr::Jcc { .. });
        let start = self.here();
        self.emit(template);
        let end = self.here();
        self.fixups.push(Fixup {
            section: self.current,
            offset: end - 4,
            kind: reloc,
            symbol: symbol.to_string(),
            line: self.line,
            must_resolve,
        });
        debug_assert!(end - start >= 4);
    }

    fn handle_directive(&mut self, name: &str, rest: &str) -> Result<(), AsmError> {
        match name {
            ".section" => {
                self.current = match rest.trim().trim_start_matches('.') {
                    "text" => SectionKind::Text,
                    "data" => SectionKind::Data,
                    "rodata" => SectionKind::Rodata,
                    "bss" => SectionKind::Bss,
                    "init" => SectionKind::Init,
                    "fini" => SectionKind::Fini,
                    other => return self.err(format!("unknown section `{other}`")),
                };
                self.cur();
                Ok(())
            }
            ".global" => {
                self.globals.push(rest.trim().to_string());
                Ok(())
            }
            ".byte" | ".word" | ".quad" => {
                if self.current == SectionKind::Bss {
                    return self.err("initialized data in .bss");
                }
                let width = match name {
                    ".byte" => 1,
                    ".word" => 4,
                    _ => 8,
                };
                for val in split_operands(rest) {
                    if let Some(v) = parse_int(&val) {
                        let here = self.cur();
                        match width {
                            1 => here.data.push(v as u8),
                            4 => here.data.extend_from_slice(&(v as u32).to_le_bytes()),
                            _ => here.data.extend_from_slice(&(v as u64).to_le_bytes()),
                        }
                    } else if width == 8 {
                        // Symbolic pointer: emit zeros plus an Abs64 reloc.
                        let offset = self.here();
                        self.cur().data.extend_from_slice(&[0u8; 8]);
                        self.fixups.push(Fixup {
                            section: self.current,
                            offset,
                            kind: RelocKind::Abs64,
                            symbol: val.clone(),
                            line: self.line,
                            must_resolve: false,
                        });
                    } else {
                        return self.err(format!("bad value `{val}` for {name}"));
                    }
                }
                Ok(())
            }
            ".space" => {
                let n = parse_int(rest.trim())
                    .filter(|v| *v >= 0)
                    .ok_or_else(|| AsmError {
                        file: self.file.clone(),
                        line: self.line,
                        message: format!("bad .space size `{rest}`"),
                    })? as u64;
                if self.current == SectionKind::Bss {
                    self.cur().bss_size += n;
                } else {
                    let buf = self.cur();
                    buf.data.extend(std::iter::repeat_n(0u8, n as usize));
                }
                Ok(())
            }
            ".ascii" | ".asciz" => {
                let rest = rest.trim();
                let Some(body) = rest
                    .strip_prefix('"')
                    .and_then(|r| r.strip_suffix('"'))
                else {
                    return self.err("string literal expected");
                };
                let mut bytes = Vec::new();
                let mut chars = body.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('n') => bytes.push(b'\n'),
                            Some('t') => bytes.push(b'\t'),
                            Some('0') => bytes.push(0),
                            Some('\\') => bytes.push(b'\\'),
                            Some('"') => bytes.push(b'"'),
                            _ => return self.err("bad escape in string"),
                        }
                    } else {
                        bytes.push(c as u8);
                    }
                }
                if name == ".asciz" {
                    bytes.push(0);
                }
                self.cur().data.extend_from_slice(&bytes);
                Ok(())
            }
            ".align" => {
                let n = parse_int(rest.trim()).filter(|v| *v > 0).ok_or_else(|| AsmError {
                    file: self.file.clone(),
                    line: self.line,
                    message: "bad alignment".into(),
                })? as u64;
                let here = self.here();
                let pad = (n - here % n) % n;
                if self.current == SectionKind::Bss {
                    self.cur().bss_size += pad;
                } else {
                    let buf = self.cur();
                    buf.data.extend(std::iter::repeat_n(0u8, pad as usize));
                }
                Ok(())
            }
            _ => self.err(format!("unknown directive `{name}`")),
        }
    }

    fn handle_instruction(&mut self, mnem: &str, rest: &str) -> Result<(), AsmError> {
        if self.current == SectionKind::Bss {
            return self.err("instructions not allowed in .bss");
        }
        let ops = split_operands(rest);
        let reg_at = |i: usize| -> Result<Reg, AsmError> {
            ops.get(i)
                .and_then(|t| parse_reg(t))
                .ok_or_else(|| AsmError {
                    file: self.file.clone(),
                    line: self.line,
                    message: format!("expected register operand {i} for `{mnem}`"),
                })
        };

        match mnem {
            "nop" => self.emit(Instr::Nop),
            "halt" => self.emit(Instr::Halt),
            "trap" => self.emit(Instr::Trap),
            "ret" => self.emit(Instr::Ret),
            "syscall" => self.emit(Instr::Syscall),
            "pushf" => self.emit(Instr::PushF),
            "popf" => self.emit(Instr::PopF),
            "push" => {
                let rs = reg_at(0)?;
                self.emit(Instr::Push { rs });
            }
            "pop" => {
                let rd = reg_at(0)?;
                self.emit(Instr::Pop { rd });
            }
            "neg" => {
                let rd = reg_at(0)?;
                self.emit(Instr::Neg { rd });
            }
            "not" => {
                let rd = reg_at(0)?;
                self.emit(Instr::Not { rd });
            }
            "mov" => {
                let rd = reg_at(0)?;
                let src = ops.get(1).cloned().unwrap_or_default();
                if let Some(rs) = parse_reg(&src) {
                    self.emit(Instr::MovRr { rd, rs });
                } else if let Some(v) = parse_int(&src) {
                    if let Ok(imm) = i32::try_from(v) {
                        self.emit(Instr::MovI32 { rd, imm });
                    } else {
                        self.emit(Instr::MovI64 { rd, imm: v as u64 });
                    }
                } else {
                    return self.err(format!("bad mov source `{src}`"));
                }
            }
            "la" => {
                let rd = reg_at(0)?;
                let sym = ops
                    .get(1)
                    .cloned()
                    .ok_or_else(|| AsmError {
                        file: self.file.clone(),
                        line: self.line,
                        message: "la needs a symbol".into(),
                    })?;
                if self.opts.pic {
                    self.emit_branch(Instr::LeaPc { rd, disp: 0 }, &sym, RelocKind::Pc32);
                } else {
                    let offset = self.here() + 2; // imm64 field
                    self.emit(Instr::MovI64 { rd, imm: 0 });
                    self.fixups.push(Fixup {
                        section: self.current,
                        offset,
                        kind: RelocKind::Abs64,
                        symbol: sym,
                        line: self.line,
                        must_resolve: false,
                    });
                }
            }
            "lg" => {
                let rd = reg_at(0)?;
                let sym = ops.get(1).cloned().ok_or_else(|| AsmError {
                    file: self.file.clone(),
                    line: self.line,
                    message: "lg needs a symbol".into(),
                })?;
                self.emit_branch(Instr::LeaPc { rd, disp: 0 }, &sym, RelocKind::GotPc32);
                self.emit(Instr::Ld {
                    size: MemSize::B8,
                    rd,
                    base: rd,
                    disp: 0,
                });
            }
            "lea" => {
                let rd = reg_at(0)?;
                let m = ops.get(1).and_then(|t| parse_mem(t)).ok_or_else(|| AsmError {
                    file: self.file.clone(),
                    line: self.line,
                    message: "lea needs a memory operand".into(),
                })?;
                if m.idx.is_some() {
                    return self.err("lea does not support index registers");
                }
                self.emit(Instr::Lea {
                    rd,
                    base: m.base,
                    disp: m.disp,
                });
            }
            "jmp" => {
                let t = ops.first().cloned().unwrap_or_default();
                if let Some(rs) = parse_reg(&t) {
                    self.emit(Instr::JmpInd { rs });
                } else {
                    self.emit_branch(Instr::Jmp { rel: 0 }, &t, RelocKind::Pc32);
                }
            }
            "call" => {
                let t = ops.first().cloned().unwrap_or_default();
                if let Some(rs) = parse_reg(&t) {
                    self.emit(Instr::CallInd { rs });
                } else {
                    self.emit_branch(Instr::Call { rel: 0 }, &t, RelocKind::Plt32);
                }
            }
            "rdtls" => {
                let rd = reg_at(0)?;
                let off = ops.get(1).and_then(|t| parse_int(t)).ok_or_else(|| AsmError {
                    file: self.file.clone(),
                    line: self.line,
                    message: "rdtls needs an offset".into(),
                })? as i32;
                self.emit(Instr::RdTls { rd, off });
            }
            "wrtls" => {
                let rs = reg_at(0)?;
                let off = ops.get(1).and_then(|t| parse_int(t)).ok_or_else(|| AsmError {
                    file: self.file.clone(),
                    line: self.line,
                    message: "wrtls needs an offset".into(),
                })? as i32;
                self.emit(Instr::WrTls { rs, off });
            }
            _ => {
                if let Some(cc) = cond_code(mnem) {
                    let t = ops.first().cloned().unwrap_or_default();
                    self.emit_branch(Instr::Jcc { cc, rel: 0 }, &t, RelocKind::Pc32);
                } else if let Some(op) = alu_op(mnem) {
                    let rd = reg_at(0)?;
                    let src = ops.get(1).cloned().unwrap_or_default();
                    if let Some(rs) = parse_reg(&src) {
                        self.emit(Instr::AluRr { op, rd, rs });
                    } else if let Some(v) = parse_int(&src) {
                        let imm = i32::try_from(v).map_err(|_| AsmError {
                            file: self.file.clone(),
                            line: self.line,
                            message: "ALU immediate out of i32 range".into(),
                        })?;
                        self.emit(Instr::AluRi { op, rd, imm });
                    } else {
                        return self.err(format!("bad operand `{src}`"));
                    }
                } else if let Some(size) = mnem
                    .strip_prefix("ld")
                    .and_then(mem_size)
                {
                    let rd = reg_at(0)?;
                    let m = ops.get(1).and_then(|t| parse_mem(t)).ok_or_else(|| AsmError {
                        file: self.file.clone(),
                        line: self.line,
                        message: "load needs a memory operand".into(),
                    })?;
                    match m.idx {
                        None => self.emit(Instr::Ld {
                            size,
                            rd,
                            base: m.base,
                            disp: m.disp,
                        }),
                        Some((idx, scale)) => self.emit(Instr::LdIdx {
                            size,
                            rd,
                            base: m.base,
                            idx,
                            scale,
                            disp: m.disp,
                        }),
                    }
                } else if let Some(size) = mnem.strip_prefix("st").and_then(mem_size) {
                    let m = ops.first().and_then(|t| parse_mem(t)).ok_or_else(|| AsmError {
                        file: self.file.clone(),
                        line: self.line,
                        message: "store needs a memory operand first".into(),
                    })?;
                    let rs = reg_at(1)?;
                    match m.idx {
                        None => self.emit(Instr::St {
                            size,
                            rs,
                            base: m.base,
                            disp: m.disp,
                        }),
                        Some((idx, scale)) => self.emit(Instr::StIdx {
                            size,
                            rs,
                            base: m.base,
                            idx,
                            scale,
                            disp: m.disp,
                        }),
                    }
                } else {
                    return self.err(format!("unknown mnemonic `{mnem}`"));
                }
            }
        }
        Ok(())
    }
}

/// Assembles `source` into a relocatable [`Object`].
///
/// # Errors
///
/// Returns an [`AsmError`] carrying `file` and the 1-based line number on
/// any syntax error, unknown mnemonic, out-of-range operand, duplicate
/// label, or branch to an unknown local symbol that is not resolvable by
/// relocation.
pub fn assemble(file: &str, source: &str, opts: &AsmOptions) -> Result<Object, AsmError> {
    let mut a = Assembler {
        file: file.to_string(),
        opts,
        sections: HashMap::new(),
        current: SectionKind::Text,
        labels: HashMap::new(),
        label_order: Vec::new(),
        globals: Vec::new(),
        fixups: Vec::new(),
        line: 0,
    };

    for (idx, raw) in source.lines().enumerate() {
        a.line = idx + 1;
        let mut line = strip_comment(raw).trim();
        // Labels (possibly several, possibly followed by code).
        while let Some(colon) = line.find(':') {
            let (head, tail) = line.split_at(colon);
            let head = head.trim();
            if head.is_empty()
                || !head
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
                || head.contains(' ')
            {
                break;
            }
            a.define_label(head)?;
            line = tail[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(stripped) = line.strip_prefix('.') {
            let (name, rest) = match stripped.find(char::is_whitespace) {
                Some(ws) => (&line[..ws + 1], &line[ws + 1..]),
                None => (line, ""),
            };
            a.handle_directive(name.trim(), rest)?;
        } else {
            let (mnem, rest) = match line.find(char::is_whitespace) {
                Some(ws) => (&line[..ws], &line[ws + 1..]),
                None => (line, ""),
            };
            a.handle_instruction(mnem, rest)?;
        }
    }

    // Second pass: resolve fixups against local labels or emit relocations.
    let mut relocs = Vec::new();
    let fixups = std::mem::take(&mut a.fixups);
    for f in fixups {
        match a.labels.get(&f.symbol) {
            Some(&(sec, target)) if sec == f.section && f.kind != RelocKind::Abs64 && f.kind != RelocKind::GotPc32 => {
                // Same-section PC-relative reference: patch directly.
                let p = f.offset + 4;
                let rel = target as i64 - p as i64;
                let rel = i32::try_from(rel).map_err(|_| AsmError {
                    file: a.file.clone(),
                    line: f.line,
                    message: "branch displacement out of range".into(),
                })?;
                let buf = a.sections.get_mut(&f.section).unwrap();
                buf.data[f.offset as usize..f.offset as usize + 4]
                    .copy_from_slice(&rel.to_le_bytes());
            }
            _ => {
                // Known-in-other-section, or external: leave to the linker.
                if f.must_resolve && !a.labels.contains_key(&f.symbol) {
                    return Err(AsmError {
                        file: a.file.clone(),
                        line: f.line,
                        message: format!(
                            "conditional branch to undefined symbol `{}`",
                            f.symbol
                        ),
                    });
                }
                relocs.push(Reloc {
                    section: f.section,
                    offset: f.offset,
                    kind: f.kind,
                    symbol: f.symbol,
                    addend: 0,
                });
            }
        }
    }

    // Build the symbol table with sizes derived from label spacing.
    let mut obj = Object::new(file);
    // BTreeMap: symbol-table order must not depend on hash iteration, so
    // that the same source always serializes to the same object bytes.
    let mut per_section: std::collections::BTreeMap<SectionKind, Vec<(String, u64)>> =
        std::collections::BTreeMap::new();
    for (name, sec, off) in &a.label_order {
        per_section.entry(*sec).or_default().push((name.clone(), *off));
    }
    for (sec, mut labels) in per_section {
        labels.sort_by_key(|(_, off)| *off);
        let sec_end = a
            .sections
            .get(&sec)
            .map(|b| {
                if sec == SectionKind::Bss {
                    b.bss_size
                } else {
                    b.data.len() as u64
                }
            })
            .unwrap_or(0);
        for i in 0..labels.len() {
            let (name, off) = &labels[i];
            // `.L`-style labels are assembler-local: they do not bound the
            // size of real symbols (GNU as behaviour), and get size 0
            // themselves.
            let size = if name.starts_with('.') {
                0
            } else {
                labels[i + 1..]
                    .iter()
                    .find(|(n, _)| !n.starts_with('.'))
                    .map(|(_, o)| *o)
                    .unwrap_or(sec_end)
                    .saturating_sub(*off)
            };
            let bind = if a.globals.contains(name) {
                SymBind::Global
            } else {
                SymBind::Local
            };
            obj.symbols.push(Symbol {
                name: name.clone(),
                kind: if sec.is_code() { SymKind::Func } else { SymKind::Object },
                bind,
                section: Some(sec),
                value: *off,
                size,
            });
        }
    }
    // Undefined symbols referenced by relocations.
    for r in &relocs {
        if !a.labels.contains_key(&r.symbol) && obj.symbol(&r.symbol).is_none() {
            obj.symbols.push(Symbol {
                name: r.symbol.clone(),
                kind: SymKind::Func,
                bind: SymBind::Global,
                section: None,
                value: 0,
                size: 0,
            });
        }
    }

    for (kind, buf) in a.sections {
        if kind == SectionKind::Bss {
            if buf.bss_size > 0 {
                obj.sections.push(Section::zeroed(SectionKind::Bss, buf.bss_size));
            }
        } else if !buf.data.is_empty() {
            obj.sections.push(Section::new(kind, buf.data));
        }
    }
    obj.sections.sort_by_key(|s| s.kind);
    obj.relocs = relocs;
    Ok(obj)
}
