//! # JX-64 assembler
//!
//! A two-pass assembler from a textual syntax to JOF relocatable
//! [`janitizer_obj::Object`]s. The guest libc, the libgfortran-like low-level library and
//! the hand-written parts of the workloads are written in this syntax; the
//! MiniC compiler also emits it.
//!
//! ## Syntax overview
//!
//! ```text
//! .section text          ; also data, rodata, bss, init, fini
//! .global main
//! main:
//!     push fp
//!     mov fp, sp
//!     mov r0, 42         ; immediates: decimal, hex, 'c'
//!     ld8 r1, [sp+8]     ; loads/stores: ld1/ld2/ld4/ld8, st1/st2/st4/st8
//!     st8 [r1+r2*8+16], r0
//!     la r0, message     ; load address (absolute or PC-relative per mode)
//!     lg r1, counter     ; load address via the GOT (PIC cross-module data)
//!     call puts          ; direct call (may resolve to a PLT stub)
//!     je done
//!     ret
//! done:
//!     ret
//!
//! .section rodata
//! message: .asciz "hello"
//! table:   .quad main, done     ; 8-byte pointers, relocated
//! ```
//!
//! The assembler runs in either **PIC** or **non-PIC** mode
//! ([`AsmOptions::pic`]): `la` expands to `lea rd, [pc+...]` in PIC mode
//! and to `mov rd, imm64` with an absolute relocation otherwise — exactly
//! the distinction that makes RetroWrite-style static rewriting possible
//! for one class of binaries and not the other (paper §2.1).
//!
//! ```
//! use janitizer_asm::{assemble, AsmOptions};
//!
//! # fn main() -> Result<(), janitizer_asm::AsmError> {
//! let obj = assemble(
//!     "exit42.s",
//!     ".section text\n.global _start\n_start:\n mov r0, 0\n mov r1, 42\n syscall\n",
//!     &AsmOptions::default(),
//! )?;
//! assert!(obj.symbol("_start").is_some());
//! # Ok(())
//! # }
//! ```

mod parser;

pub use parser::{assemble, AsmError, AsmOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_isa::{decode, Instr, Reg};
    use janitizer_obj::{RelocKind, SectionKind};

    fn asm(src: &str) -> janitizer_obj::Object {
        assemble("test.s", src, &AsmOptions::default()).expect("assembly failed")
    }

    fn asm_pic(src: &str) -> janitizer_obj::Object {
        assemble(
            "test.s",
            src,
            &AsmOptions { pic: true },
        )
        .expect("assembly failed")
    }

    fn decode_all(data: &[u8]) -> Vec<Instr> {
        let mut out = Vec::new();
        let mut off = 0;
        while off < data.len() {
            let (i, next) = decode(data, off).unwrap();
            out.push(i);
            off = next;
        }
        out
    }

    #[test]
    fn basic_instructions_assemble() {
        let obj = asm(
            ".section text\n\
             start:\n\
             \tnop\n\
             \tmov r0, 5\n\
             \tmov r1, r0\n\
             \tadd r1, 3\n\
             \tsub r1, r0\n\
             \tret\n",
        );
        let text = obj.section(SectionKind::Text).unwrap();
        let insns = decode_all(&text.data);
        assert_eq!(insns[0], Instr::Nop);
        assert_eq!(insns[1], Instr::MovI32 { rd: Reg::R0, imm: 5 });
        assert_eq!(insns[2], Instr::MovRr { rd: Reg::R1, rs: Reg::R0 });
        assert_eq!(insns[5], Instr::Ret);
    }

    #[test]
    fn memory_operands() {
        let obj = asm(
            ".section text\n\
             f:\n\
             \tld8 r1, [sp+8]\n\
             \tld4 r2, [r1]\n\
             \tst1 [r1-4], r2\n\
             \tld8 r3, [r1+r2*8+16]\n\
             \tst8 [r1+r2*1], r3\n\
             \tlea r4, [fp-32]\n\
             \tret\n",
        );
        let text = obj.section(SectionKind::Text).unwrap();
        let insns = decode_all(&text.data);
        assert!(matches!(insns[0], Instr::Ld { base: Reg::R15, disp: 8, .. }));
        assert!(matches!(insns[2], Instr::St { disp: -4, .. }));
        assert!(matches!(
            insns[3],
            Instr::LdIdx {
                scale: 3,
                disp: 16,
                ..
            }
        ));
        assert!(matches!(insns[4], Instr::StIdx { scale: 0, .. }));
        assert!(matches!(insns[5], Instr::Lea { base: Reg::R14, disp: -32, .. }));
    }

    #[test]
    fn local_branches_resolve_without_relocs() {
        let obj = asm(
            ".section text\n\
             f:\n\
             \tcmp r0, 0\n\
             \tje out\n\
             \tsub r0, 1\n\
             \tjmp f\n\
             out:\n\
             \tret\n",
        );
        assert!(obj.relocs.is_empty(), "local branches need no relocations");
        let text = obj.section(SectionKind::Text).unwrap();
        let insns = decode_all(&text.data);
        // jmp f: backwards branch.
        let Instr::Jmp { rel } = insns[3] else { panic!() };
        assert!(rel < 0);
    }

    #[test]
    fn call_emits_plt32_reloc() {
        let obj = asm(".section text\nf:\n\tcall puts\n\tret\n");
        assert_eq!(obj.relocs.len(), 1);
        let r = &obj.relocs[0];
        assert_eq!(r.kind, RelocKind::Plt32);
        assert_eq!(r.symbol, "puts");
        assert_eq!(r.offset, 1, "rel32 operand starts after the opcode byte");
    }

    #[test]
    fn la_mode_dependence() {
        let src = ".section text\nf:\n\tla r0, target\n\tret\n.section data\ntarget: .quad 0\n";
        let nonpic = asm(src);
        let text = nonpic.section(SectionKind::Text).unwrap();
        assert!(matches!(decode_all(&text.data)[0], Instr::MovI64 { .. }));
        assert_eq!(nonpic.relocs[0].kind, RelocKind::Abs64);

        let pic = asm_pic(src);
        let text = pic.section(SectionKind::Text).unwrap();
        assert!(matches!(decode_all(&text.data)[0], Instr::LeaPc { .. }));
        assert_eq!(pic.relocs[0].kind, RelocKind::Pc32);
    }

    #[test]
    fn lg_uses_got() {
        let obj = asm_pic(".section text\nf:\n\tlg r2, shared_counter\n\tret\n");
        assert_eq!(obj.relocs[0].kind, RelocKind::GotPc32);
        let text = obj.section(SectionKind::Text).unwrap();
        let insns = decode_all(&text.data);
        assert!(matches!(insns[0], Instr::LeaPc { rd: Reg::R2, .. }));
        assert!(matches!(
            insns[1],
            Instr::Ld {
                rd: Reg::R2,
                base: Reg::R2,
                ..
            }
        ));
    }

    #[test]
    fn data_directives() {
        let obj = asm(
            ".section data\n\
             bytes: .byte 1, 2, 0xff\n\
             words: .word 0x11223344\n\
             quads: .quad 0x1122334455667788\n\
             blob:  .space 10\n\
             text1: .ascii \"ab\"\n\
             text2: .asciz \"cd\"\n",
        );
        let data = obj.section(SectionKind::Data).unwrap();
        assert_eq!(&data.data[0..3], &[1, 2, 0xff]);
        assert_eq!(&data.data[3..7], &0x11223344u32.to_le_bytes());
        assert_eq!(&data.data[7..15], &0x1122334455667788u64.to_le_bytes());
        assert_eq!(&data.data[25..27], b"ab");
        assert_eq!(&data.data[27..30], b"cd\0");
        assert_eq!(obj.symbol("blob").unwrap().value, 15);
    }

    #[test]
    fn quad_with_symbol_emits_abs64() {
        let obj = asm(
            ".section text\nf:\n\tret\ng:\n\tret\n\
             .section rodata\ntbl: .quad f, g\n",
        );
        let rels: Vec<_> = obj
            .relocs
            .iter()
            .filter(|r| r.section == SectionKind::Rodata)
            .collect();
        assert_eq!(rels.len(), 2);
        assert!(rels.iter().all(|r| r.kind == RelocKind::Abs64));
        assert_eq!(rels[1].offset, 8);
    }

    #[test]
    fn bss_takes_no_file_space() {
        let obj = asm(".section bss\nbuf: .space 4096\n");
        let bss = obj.section(SectionKind::Bss).unwrap();
        assert!(bss.data.is_empty());
        assert_eq!(bss.mem_size, 4096);
    }

    #[test]
    fn globals_and_locals() {
        let obj = asm(".section text\n.global f\nf:\n\tret\nhelper:\n\tret\n");
        use janitizer_obj::SymBind;
        assert_eq!(obj.symbol("f").unwrap().bind, SymBind::Global);
        assert_eq!(obj.symbol("helper").unwrap().bind, SymBind::Local);
    }

    #[test]
    fn function_sizes_recorded() {
        let obj = asm(".section text\nf:\n\tnop\n\tnop\n\tret\ng:\n\tret\n");
        assert_eq!(obj.symbol("f").unwrap().size, 3);
        assert_eq!(obj.symbol("g").unwrap().size, 1);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = assemble("bad.s", ".section text\nf:\n\tbogus r0\n", &AsmOptions::default())
            .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("bad.s:3"), "got: {msg}");
        assert!(assemble("bad.s", "f:\n\tmov r99, 1\n", &AsmOptions::default()).is_err());
        assert!(assemble("dup.s", ".section text\nf:\nf:\n", &AsmOptions::default()).is_err());
        assert!(assemble(
            "undef.s",
            ".section text\nf:\n\tje nowhere\n",
            &AsmOptions::default()
        )
        .is_err());
    }

    #[test]
    fn data_in_text_is_allowed() {
        // Jump tables interleaved with code — the code/data ambiguity that
        // makes static-only disassembly unsound (paper §2.1).
        let obj = asm(
            ".section text\n\
             f:\n\tret\n\
             jumptable: .quad f\n\
             g:\n\tret\n",
        );
        let text = obj.section(SectionKind::Text).unwrap();
        assert_eq!(text.data.len(), 1 + 8 + 1);
        assert_eq!(obj.symbol("g").unwrap().value, 9);
    }

    #[test]
    fn tls_and_stack_instructions() {
        let obj = asm(
            ".section text\n\
             f:\n\
             \trdtls r6, 0x28\n\
             \twrtls r6, 0x100\n\
             \tpushf\n\
             \tpopf\n\
             \tpush r8\n\
             \tpop r8\n\
             \tret\n",
        );
        let insns = decode_all(&obj.section(SectionKind::Text).unwrap().data);
        assert_eq!(insns[0], Instr::RdTls { rd: Reg::R6, off: 0x28 });
        assert_eq!(insns[1], Instr::WrTls { rs: Reg::R6, off: 0x100 });
        assert_eq!(insns[2], Instr::PushF);
    }

    #[test]
    fn align_directive() {
        let obj = asm(".section data\na: .byte 1\n.align 8\nb: .quad 2\n");
        assert_eq!(obj.symbol("b").unwrap().value, 8);
    }

    #[test]
    fn char_and_negative_immediates() {
        let obj = asm(".section text\nf:\n\tmov r0, 'A'\n\tmov r1, -7\n\tret\n");
        let insns = decode_all(&obj.section(SectionKind::Text).unwrap().data);
        assert_eq!(insns[0], Instr::MovI32 { rd: Reg::R0, imm: 65 });
        assert_eq!(insns[1], Instr::MovI32 { rd: Reg::R1, imm: -7 });
    }
}
