//! Loader and process edge cases.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_link::{link, LinkOptions};
use janitizer_vm::*;

fn exe(src: &str) -> janitizer_obj::Image {
    let o = assemble("e.s", src, &AsmOptions::default()).unwrap();
    link(&[o], &LinkOptions::executable("e")).unwrap()
}

#[test]
fn missing_module_is_an_error() {
    let store = ModuleStore::new();
    assert!(matches!(
        load_process(&store, "nope", &LoadOptions::default()),
        Err(LoadError::ModuleNotFound(_))
    ));
}

#[test]
fn missing_dependency_is_an_error() {
    let o = assemble(
        "e.s",
        ".section text\n.global _start\n_start:\n ret\n",
        &AsmOptions::default(),
    )
    .unwrap();
    let img = link(&[o], &LinkOptions::executable("e").needs("libmissing.so")).unwrap();
    let mut store = ModuleStore::new();
    store.add(img);
    assert!(matches!(
        load_process(&store, "e", &LoadOptions::default()),
        Err(LoadError::ModuleNotFound(m)) if m == "libmissing.so"
    ));
}

#[test]
fn two_non_pic_modules_conflict() {
    // A non-PIC "library" cannot coexist with a non-PIC executable: both
    // claim the fixed image base.
    let a = exe(".section text\n.global _start\n_start:\n ret\n");
    let o = assemble(
        "l.s",
        ".section text\n.global libfn\nlibfn:\n ret\n",
        &AsmOptions::default(),
    )
    .unwrap();
    let mut lopts = LinkOptions::executable("libweird.so");
    lopts.entry = "libfn".into();
    let weird = link(&[o], &lopts).unwrap();
    let mut a2 = a.clone();
    a2.needed.push("libweird.so".into());
    let mut store = ModuleStore::new();
    store.add(a2);
    store.add(weird);
    assert!(matches!(
        load_process(&store, "e", &LoadOptions::default()),
        Err(LoadError::NonPicConflict(_))
    ));
}

#[test]
fn dlopen_unknown_module_returns_error_handle() {
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 5\n la r1, name\n mov r2, 10\n syscall\n\
        ; r0 == u64::MAX on failure; map to exit 1/0\n\
        not r0\n cmp r0, 0\n je fail\n mov r0, 0\n ret\n\
        fail:\n mov r0, 1\n ret\n\
        .section rodata\nname: .ascii \"libnope.so\"\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    assert_eq!(p.run_native(1_000_000), Exit::Exited(1), "dlopen failed as expected");
}

#[test]
fn dlopen_twice_returns_same_handle() {
    let plugin = {
        let o = assemble(
            "p.s",
            ".section text\n.global f\nf:\n ret\n",
            &AsmOptions { pic: true },
        )
        .unwrap();
        link(&[o], &LinkOptions::shared_object("libp.so")).unwrap()
    };
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 5\n la r1, name\n mov r2, 7\n syscall\n mov r8, r0\n\
        mov r0, 5\n la r1, name\n mov r2, 7\n syscall\n\
        sub r0, r8\n ret\n\
        .section rodata\nname: .ascii \"libp.so\"\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    store.add(plugin);
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    assert_eq!(p.run_native(1_000_000), Exit::Exited(0), "same handle twice");
    assert_eq!(
        p.modules.iter().filter(|m| m.image.name == "libp.so").count(),
        1,
        "loaded once"
    );
}

#[test]
fn stack_overflow_faults_cleanly() {
    // Infinite recursion exhausts the stack region and faults rather than
    // corrupting anything.
    let src = ".section text\n.global _start\n_start:\nrecurse:\n push r0\n call recurse\n ret\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    let exit = p.run_native(500_000_000);
    assert!(
        matches!(exit, Exit::Fault(Fault { kind: FaultKind::Mem(_), .. })),
        "{exit:?}"
    );
}

#[test]
fn heap_exhaustion_aborts() {
    let src = ".section text\n.global _start\n_start:\n\
        loop:\n mov r0, 2\n mov r1, 0x10000000\n syscall\n jmp loop\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    let exit = p.run_native(100_000_000);
    assert!(
        matches!(exit, Exit::Fault(Fault { kind: FaultKind::Abort(_), .. })),
        "{exit:?}"
    );
}

#[test]
fn division_by_zero_faults() {
    let src = ".section text\n.global _start\n_start:\n mov r0, 1\n mov r1, 0\n div r0, r1\n ret\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    assert!(matches!(
        p.run_native(1_000_000),
        Exit::Fault(Fault {
            kind: FaultKind::DivByZero,
            ..
        })
    ));
}

#[test]
fn bad_syscall_number_faults() {
    let src = ".section text\n.global _start\n_start:\n mov r0, 999\n syscall\n ret\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    assert!(matches!(
        p.run_native(1_000_000),
        Exit::Fault(Fault {
            kind: FaultKind::BadSyscall(999),
            ..
        })
    ));
}

#[test]
fn executing_data_faults() {
    let src = ".section text\n.global _start\n_start:\n la r1, blob\n jmp r1\n\
               .section data\nblob: .quad 0\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    let exit = p.run_native(1_000_000);
    let Exit::Fault(f) = exit else { panic!("{exit:?}") };
    assert!(matches!(
        f.kind,
        FaultKind::Mem(MemFault {
            access: Access::Fetch,
            ..
        })
    ));
}

#[test]
fn undecodable_bytes_fault_with_decode_error() {
    // Jump into the middle of a multi-byte instruction whose tail bytes do
    // not decode.
    let src = ".section text\n.global _start\n_start:\n\
        la r1, target\n add r1, 2\n jmp r1\n\
        target:\n mov r2, 0xffffffff\n ret\n";
    let mut store = ModuleStore::new();
    store.add(exe(src));
    let mut p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    let exit = p.run_native(1_000_000);
    assert!(
        matches!(
            exit,
            Exit::Fault(Fault {
                kind: FaultKind::Decode(_) | FaultKind::Mem(_) | FaultKind::Halt,
                ..
            }) | Exit::Exited(_)
        ),
        "mid-instruction execution is contained: {exit:?}"
    );
}

#[test]
fn module_ranges_do_not_overlap() {
    let lib = {
        let o = assemble(
            "l.s",
            ".section text\n.global g\ng:\n ret\n.section data\nd: .quad 1\n",
            &AsmOptions { pic: true },
        )
        .unwrap();
        link(&[o], &LinkOptions::shared_object("libl.so")).unwrap()
    };
    let o = assemble(
        "e.s",
        ".section text\n.global _start\n_start:\n call g\n ret\n",
        &AsmOptions::default(),
    )
    .unwrap();
    let img = link(&[o], &LinkOptions::executable("e").needs("libl.so")).unwrap();
    let ld = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
    let mut store = ModuleStore::new();
    store.add(img);
    store.add(lib);
    store.add(link(&[ld], &LinkOptions::shared_object("ld.so")).unwrap());
    let p = load_process(&store, "e", &LoadOptions::default()).unwrap();
    let mut ranges: Vec<(u64, u64)> = p.modules.iter().map(|m| m.range()).collect();
    ranges.sort();
    for w in ranges.windows(2) {
        assert!(w[0].1 <= w[1].0, "module ranges overlap: {ranges:?}");
    }
}
