//! Model-based property tests for guest memory: random operations checked
//! against a simple `HashMap<u64, u8>` reference model.

use janitizer_vm::{Memory, Perm};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Write { off: u64, len: u8, value: u64 },
    Read { off: u64, len: u8 },
    WriteBytes { off: u64, data: Vec<u8> },
    ReadBytes { off: u64, len: u8 },
}

const BASE: u64 = 0x10_0000;
const SIZE: u64 = 0x4000;

fn arb_len() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SIZE, arb_len(), any::<u64>()).prop_map(|(off, len, value)| Op::Write {
            off,
            len,
            value
        }),
        (0..SIZE, arb_len()).prop_map(|(off, len)| Op::Read { off, len }),
        (0..SIZE, prop::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(off, data)| Op::WriteBytes { off, data }),
        (0..SIZE, 0u8..24).prop_map(|(off, len)| Op::ReadBytes { off, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every successful int/byte write is later read back identically;
    /// out-of-region accesses fail in both the model and the real memory.
    #[test]
    fn memory_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..80)) {
        let mut mem = Memory::new();
        mem.map(BASE, SIZE, Perm::RW, "play").unwrap();
        let mut model: HashMap<u64, u8> = HashMap::new();

        for op in ops {
            match op {
                Op::Write { off, len, value } => {
                    let addr = BASE + off;
                    let fits = off + len as u64 <= SIZE;
                    let r = mem.write_int(addr, len as u64, value);
                    prop_assert_eq!(r.is_ok(), fits);
                    if fits {
                        for i in 0..len as u64 {
                            model.insert(addr + i, (value >> (8 * i)) as u8);
                        }
                    }
                }
                Op::Read { off, len } => {
                    let addr = BASE + off;
                    let fits = off + len as u64 <= SIZE;
                    let r = mem.read_int(addr, len as u64);
                    prop_assert_eq!(r.is_ok(), fits);
                    if let Ok(v) = r {
                        let mut expect = 0u64;
                        for i in (0..len as u64).rev() {
                            expect = expect << 8 | *model.get(&(addr + i)).unwrap_or(&0) as u64;
                        }
                        prop_assert_eq!(v, expect);
                    }
                }
                Op::WriteBytes { off, data } => {
                    let addr = BASE + off;
                    let fits = off + data.len() as u64 <= SIZE;
                    let r = mem.write_bytes(addr, &data);
                    if data.is_empty() {
                        // Zero-length writes are trivially fine.
                        continue;
                    }
                    prop_assert_eq!(r.is_ok(), fits);
                    if fits {
                        for (i, b) in data.iter().enumerate() {
                            model.insert(addr + i as u64, *b);
                        }
                    }
                }
                Op::ReadBytes { off, len } => {
                    let addr = BASE + off;
                    let fits = off + len as u64 <= SIZE;
                    let r = mem.read_bytes(addr, len as u64);
                    if len == 0 { continue; }
                    prop_assert_eq!(r.is_ok(), fits);
                    if let Ok(bytes) = r {
                        for (i, b) in bytes.iter().enumerate() {
                            prop_assert_eq!(
                                *b,
                                *model.get(&(addr + i as u64)).unwrap_or(&0)
                            );
                        }
                    }
                }
            }
        }
    }

    /// Permissions are enforced for every access size.
    #[test]
    fn readonly_region_rejects_all_writes(off in 0..SIZE, len in arb_len(), v in any::<u64>()) {
        let mut mem = Memory::new();
        mem.map(BASE, SIZE, Perm::R, "ro").unwrap();
        prop_assert!(mem.write_int(BASE + off, len as u64, v).is_err());
        if off + (len as u64) <= SIZE {
            prop_assert!(mem.read_int(BASE + off, len as u64).is_ok());
        }
    }
}
