//! The JX-64 interpreter core: architectural state and single-instruction
//! execution, shared by the native run loop and the dynamic binary
//! modifier (which interleaves instrumentation between guest
//! instructions).

use crate::mem::MemFault;
use crate::process::Process;
use crate::syscall;
use janitizer_isa::{AluOp, Cc, DecodeError, Flags, Instr, Reg};
use std::fmt;

/// Architectural register state of the (single) guest thread.
#[derive(Clone, Debug, Default)]
pub struct CpuState {
    /// General-purpose registers `r0`–`r15`.
    pub regs: [u64; 16],
    /// Condition flags.
    pub flags: Flags,
    /// Program counter.
    pub pc: u64,
}

impl CpuState {
    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Evaluates a condition code against the current flags.
    pub fn cond(&self, cc: Cc) -> bool {
        let f = self.flags;
        match cc {
            Cc::Eq => f.zf,
            Cc::Ne => !f.zf,
            Cc::Lt => f.sf != f.of,
            Cc::Le => f.zf || f.sf != f.of,
            Cc::Gt => !f.zf && f.sf == f.of,
            Cc::Ge => f.sf == f.of,
            Cc::B => f.cf,
            Cc::Ae => !f.cf,
        }
    }
}

/// Why execution stopped at a particular instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Data access or instruction fetch fault.
    Mem(MemFault),
    /// Integer division by zero.
    DivByZero,
    /// Explicit `trap` instruction.
    Trap,
    /// Undecodable bytes at the program counter.
    Decode(DecodeError),
    /// Unknown syscall number.
    BadSyscall(u64),
    /// Guest-initiated abort (e.g. `__stack_chk_fail`).
    Abort(String),
    /// Lazy binding failed: no module defines the symbol.
    UnresolvedSymbol(String),
    /// `halt` executed outside of a test harness.
    Halt,
}

/// A guest fault, with the program counter at which it occurred.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Address of the faulting instruction.
    pub pc: u64,
    /// What went wrong.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault at {:#x}: ", self.pc)?;
        match &self.kind {
            FaultKind::Mem(m) => write!(f, "{m}"),
            FaultKind::DivByZero => write!(f, "division by zero"),
            FaultKind::Trap => write!(f, "trap"),
            FaultKind::Decode(e) => write!(f, "{e}"),
            FaultKind::BadSyscall(n) => write!(f, "unknown syscall {n}"),
            FaultKind::Abort(m) => write!(f, "abort: {m}"),
            FaultKind::UnresolvedSymbol(s) => write!(f, "unresolved symbol `{s}`"),
            FaultKind::Halt => write!(f, "halt"),
        }
    }
}

impl std::error::Error for Fault {}

/// Result of executing one instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step {
    /// Fall through to the next sequential instruction.
    Next,
    /// Control transferred to the given address.
    Jump(u64),
    /// The process exited with a status code.
    Exit(i64),
    /// Execution faulted.
    Fault(FaultKind),
}

fn alu(op: AluOp, a: u64, b: u64) -> Result<(u64, Flags), FaultKind> {
    let (result, cf, of) = match op {
        AluOp::Add => {
            let (r, c) = a.overflowing_add(b);
            let o = (a as i64).overflowing_add(b as i64).1;
            (r, c, o)
        }
        AluOp::Sub | AluOp::Cmp => {
            let (r, c) = a.overflowing_sub(b);
            let o = (a as i64).overflowing_sub(b as i64).1;
            (r, c, o)
        }
        AluOp::Mul => {
            let r = a.wrapping_mul(b);
            let wide = (a as u128) * (b as u128);
            let c = wide >> 64 != 0;
            (r, c, c)
        }
        AluOp::Divu => {
            if b == 0 {
                return Err(FaultKind::DivByZero);
            }
            (a / b, false, false)
        }
        AluOp::Modu => {
            if b == 0 {
                return Err(FaultKind::DivByZero);
            }
            (a % b, false, false)
        }
        AluOp::And | AluOp::Test => (a & b, false, false),
        AluOp::Or => (a | b, false, false),
        AluOp::Xor => (a ^ b, false, false),
        AluOp::Shl => (a.wrapping_shl((b & 63) as u32), false, false),
        AluOp::Shr => (a.wrapping_shr((b & 63) as u32), false, false),
        AluOp::Sar => (((a as i64).wrapping_shr((b & 63) as u32)) as u64, false, false),
    };
    let flags = Flags {
        zf: result == 0,
        sf: (result as i64) < 0,
        cf,
        of,
    };
    Ok((result, flags))
}

#[inline]
fn mem_addr(cpu: &CpuState, base: Reg, idx: Option<(Reg, u8)>, disp: i32) -> u64 {
    let mut a = cpu.reg(base).wrapping_add(disp as i64 as u64);
    if let Some((i, s)) = idx {
        a = a.wrapping_add(cpu.reg(i) << s);
    }
    a
}

fn push(p: &mut Process, v: u64) -> Result<(), MemFault> {
    let sp = p.cpu.reg(Reg::SP).wrapping_sub(8);
    p.mem.write_int(sp, 8, v)?;
    p.cpu.set_reg(Reg::SP, sp);
    Ok(())
}

fn pop(p: &mut Process) -> Result<u64, MemFault> {
    let sp = p.cpu.reg(Reg::SP);
    let v = p.mem.read_int(sp, 8)?;
    p.cpu.set_reg(Reg::SP, sp.wrapping_add(8));
    Ok(v)
}

/// Executes one decoded instruction.
///
/// `next_pc` must be the address immediately after the instruction's
/// encoding; relative branches and `call` return addresses are computed
/// from it. The caller is responsible for updating `process.cpu.pc` and
/// for cycle accounting (so the DBT can charge instrumentation cycles
/// separately).
pub fn execute(p: &mut Process, insn: &Instr, next_pc: u64) -> Step {
    match *insn {
        Instr::Nop => Step::Next,
        Instr::Halt => Step::Fault(FaultKind::Halt),
        Instr::Trap => Step::Fault(FaultKind::Trap),
        Instr::MovRr { rd, rs } => {
            let v = p.cpu.reg(rs);
            p.cpu.set_reg(rd, v);
            Step::Next
        }
        Instr::MovI64 { rd, imm } => {
            p.cpu.set_reg(rd, imm);
            Step::Next
        }
        Instr::MovI32 { rd, imm } => {
            p.cpu.set_reg(rd, imm as i64 as u64);
            Step::Next
        }
        Instr::LeaPc { rd, disp } => {
            p.cpu.set_reg(rd, next_pc.wrapping_add(disp as i64 as u64));
            Step::Next
        }
        Instr::Lea { rd, base, disp } => {
            let a = mem_addr(&p.cpu, base, None, disp);
            p.cpu.set_reg(rd, a);
            Step::Next
        }
        Instr::Ld { size, rd, base, disp } => {
            let a = mem_addr(&p.cpu, base, None, disp);
            match p.mem.read_int(a, size.bytes()) {
                Ok(v) => {
                    p.cpu.set_reg(rd, v);
                    Step::Next
                }
                Err(f) => Step::Fault(FaultKind::Mem(f)),
            }
        }
        Instr::St { size, rs, base, disp } => {
            let a = mem_addr(&p.cpu, base, None, disp);
            match p.mem.write_int(a, size.bytes(), p.cpu.reg(rs)) {
                Ok(()) => Step::Next,
                Err(f) => Step::Fault(FaultKind::Mem(f)),
            }
        }
        Instr::LdIdx {
            size,
            rd,
            base,
            idx,
            scale,
            disp,
        } => {
            let a = mem_addr(&p.cpu, base, Some((idx, scale)), disp);
            match p.mem.read_int(a, size.bytes()) {
                Ok(v) => {
                    p.cpu.set_reg(rd, v);
                    Step::Next
                }
                Err(f) => Step::Fault(FaultKind::Mem(f)),
            }
        }
        Instr::StIdx {
            size,
            rs,
            base,
            idx,
            scale,
            disp,
        } => {
            let a = mem_addr(&p.cpu, base, Some((idx, scale)), disp);
            match p.mem.write_int(a, size.bytes(), p.cpu.reg(rs)) {
                Ok(()) => Step::Next,
                Err(f) => Step::Fault(FaultKind::Mem(f)),
            }
        }
        Instr::AluRr { op, rd, rs } => match alu(op, p.cpu.reg(rd), p.cpu.reg(rs)) {
            Ok((v, fl)) => {
                if op.writes_dest() {
                    p.cpu.set_reg(rd, v);
                }
                p.cpu.flags = fl;
                Step::Next
            }
            Err(k) => Step::Fault(k),
        },
        Instr::AluRi { op, rd, imm } => {
            match alu(op, p.cpu.reg(rd), imm as i64 as u64) {
                Ok((v, fl)) => {
                    if op.writes_dest() {
                        p.cpu.set_reg(rd, v);
                    }
                    p.cpu.flags = fl;
                    Step::Next
                }
                Err(k) => Step::Fault(k),
            }
        }
        Instr::Neg { rd } => {
            let (v, fl) = alu(AluOp::Sub, 0, p.cpu.reg(rd)).expect("sub cannot fault");
            p.cpu.set_reg(rd, v);
            p.cpu.flags = fl;
            Step::Next
        }
        Instr::Not { rd } => {
            let v = !p.cpu.reg(rd);
            p.cpu.set_reg(rd, v);
            p.cpu.flags = Flags {
                zf: v == 0,
                sf: (v as i64) < 0,
                cf: false,
                of: false,
            };
            Step::Next
        }
        Instr::Push { rs } => {
            let v = p.cpu.reg(rs);
            match push(p, v) {
                Ok(()) => Step::Next,
                Err(f) => Step::Fault(FaultKind::Mem(f)),
            }
        }
        Instr::Pop { rd } => match pop(p) {
            Ok(v) => {
                p.cpu.set_reg(rd, v);
                Step::Next
            }
            Err(f) => Step::Fault(FaultKind::Mem(f)),
        },
        Instr::PushF => {
            let v = p.cpu.flags.to_byte() as u64;
            match push(p, v) {
                Ok(()) => Step::Next,
                Err(f) => Step::Fault(FaultKind::Mem(f)),
            }
        }
        Instr::PopF => match pop(p) {
            Ok(v) => {
                p.cpu.flags = Flags::from_byte(v as u8);
                Step::Next
            }
            Err(f) => Step::Fault(FaultKind::Mem(f)),
        },
        Instr::Jmp { rel } => Step::Jump(next_pc.wrapping_add(rel as i64 as u64)),
        Instr::Jcc { cc, rel } => {
            if p.cpu.cond(cc) {
                Step::Jump(next_pc.wrapping_add(rel as i64 as u64))
            } else {
                Step::Next
            }
        }
        Instr::Call { rel } => match push(p, next_pc) {
            Ok(()) => Step::Jump(next_pc.wrapping_add(rel as i64 as u64)),
            Err(f) => Step::Fault(FaultKind::Mem(f)),
        },
        Instr::CallInd { rs } => {
            let target = p.cpu.reg(rs);
            match push(p, next_pc) {
                Ok(()) => Step::Jump(target),
                Err(f) => Step::Fault(FaultKind::Mem(f)),
            }
        }
        Instr::JmpInd { rs } => Step::Jump(p.cpu.reg(rs)),
        Instr::Ret => match pop(p) {
            Ok(t) => Step::Jump(t),
            Err(f) => Step::Fault(FaultKind::Mem(f)),
        },
        Instr::Syscall => syscall::dispatch(p),
        Instr::RdTls { rd, off } => {
            let v = p.read_tls(off);
            p.cpu.set_reg(rd, v);
            Step::Next
        }
        Instr::WrTls { rs, off } => {
            let v = p.cpu.reg(rs);
            p.write_tls(off, v);
            Step::Next
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_flags_add_sub() {
        let (v, f) = alu(AluOp::Add, 1, 2).unwrap();
        assert_eq!(v, 3);
        assert!(!f.zf && !f.sf && !f.cf && !f.of);

        let (_, f) = alu(AluOp::Add, u64::MAX, 1).unwrap();
        assert!(f.zf && f.cf && !f.of);

        let (_, f) = alu(AluOp::Add, i64::MAX as u64, 1).unwrap();
        assert!(f.of && f.sf, "signed overflow wraps negative");

        let (_, f) = alu(AluOp::Cmp, 1, 2).unwrap();
        assert!(f.cf, "unsigned borrow");
        assert!(f.sf != f.of);

        let (_, f) = alu(AluOp::Sub, 5, 5).unwrap();
        assert!(f.zf);
    }

    #[test]
    fn div_by_zero_faults() {
        assert_eq!(alu(AluOp::Divu, 1, 0).unwrap_err(), FaultKind::DivByZero);
        assert_eq!(alu(AluOp::Modu, 1, 0).unwrap_err(), FaultKind::DivByZero);
        assert_eq!(alu(AluOp::Divu, 7, 2).unwrap().0, 3);
        assert_eq!(alu(AluOp::Modu, 7, 2).unwrap().0, 1);
    }

    #[test]
    fn shift_semantics() {
        assert_eq!(alu(AluOp::Shl, 1, 8).unwrap().0, 256);
        assert_eq!(alu(AluOp::Shr, u64::MAX, 63).unwrap().0, 1);
        assert_eq!(alu(AluOp::Sar, (-8i64) as u64, 2).unwrap().0, (-2i64) as u64);
        // Shift counts are masked to 63.
        assert_eq!(alu(AluOp::Shl, 1, 64).unwrap().0, 1);
    }

    #[test]
    fn condition_codes() {
        let mut cpu = CpuState::default();
        // 1 < 2 signed and unsigned.
        let (_, f) = alu(AluOp::Cmp, 1, 2).unwrap();
        cpu.flags = f;
        assert!(cpu.cond(Cc::Lt) && cpu.cond(Cc::B) && cpu.cond(Cc::Ne));
        assert!(!cpu.cond(Cc::Ge) && !cpu.cond(Cc::Eq));
        // -1 < 1 signed, but above unsigned.
        let (_, f) = alu(AluOp::Cmp, u64::MAX, 1).unwrap();
        cpu.flags = f;
        assert!(!cpu.cond(Cc::Gt));
        assert!(cpu.cond(Cc::Lt), "-1 < 1 signed");
        assert!(cpu.cond(Cc::Ae), "u64::MAX >= 1 unsigned");
        // equality
        let (_, f) = alu(AluOp::Cmp, 3, 3).unwrap();
        cpu.flags = f;
        assert!(cpu.cond(Cc::Eq) && cpu.cond(Cc::Le) && cpu.cond(Cc::Ge));
    }

    #[test]
    fn mul_sets_carry_on_wide_result() {
        let (_, f) = alu(AluOp::Mul, 1 << 40, 1 << 40).unwrap();
        assert!(f.cf && f.of);
        let (v, f) = alu(AluOp::Mul, 3, 4).unwrap();
        assert_eq!(v, 12);
        assert!(!f.cf);
    }
}
