//! # Guest process virtual machine
//!
//! Everything below the dynamic binary modifier: a sparse permissioned
//! [`Memory`], the JX-64 interpreter ([`execute`]), a syscall layer
//! ([`syscall`]), and a dynamic loader ([`load_process`]) that reproduces
//! the mechanisms the Janitizer paper depends on:
//!
//! * `ldd`-style static dependency discovery (modules the static analyzer
//!   can see) versus `dlopen` (modules only the dynamic modifier sees);
//! * LD_PRELOAD interposition (how JASan's allocator takes over
//!   `malloc`/`free`);
//! * PIC module rebasing and dynamic relocations;
//! * lazy PLT binding through an ld.so resolver that *pushes the resolved
//!   pointer and returns to it* — the control-flow abnormality JCFI
//!   special-cases (paper §4.2.3);
//! * JIT code regions (`mmap` with the exec flag), i.e. dynamically
//!   generated code.
//!
//! Execution is deterministic, and "time" is a cycle count accumulated
//! from per-instruction costs; the dynamic modifier layers its own
//! translation and instrumentation costs on top of the same accounting.

mod cpu;
mod loader;
mod mem;
mod process;
pub mod syscall;

pub use cpu::{execute, CpuState, Fault, FaultKind, Step};
pub use loader::{load_process, LoadError, LoadOptions, ModuleStore};
pub use mem::{Access, MemFault, Memory, Perm};
pub use process::{
    Exit, LoadedModule, Process, ProcessEvent, BOOTSTRAP_BASE, CANARY_VALUE, HEAP_BASE, HEAP_MAX,
    MMAP_BASE, PIC_MODULE_BASE, PIC_MODULE_STRIDE, STACK_BASE, STACK_SIZE,
};

/// Multiplicative hasher for guest-pc keys. The interpreter and the
/// dynamic modifier index translations by pc on every dispatch, where the
/// default SipHash costs more than the table probe it guards; pcs are
/// plain addresses with no adversarial structure, so a Fibonacci multiply
/// plus an avalanche shift is both cheap and well distributed.
#[derive(Default, Clone)]
pub struct PcHasher(u64);

impl std::hash::Hasher for PcHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 keys (unused on the hot paths).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A `HashMap` keyed by guest pc, using [`PcHasher`].
pub type PcMap<V> = std::collections::HashMap<u64, V, std::hash::BuildHasherDefault<PcHasher>>;

/// Assembly source of a minimal `ld.so` providing the lazy-binding
/// resolver. Real programs use the full ld.so from `janitizer-workloads`;
/// this one is enough for tests and examples.
///
/// The resolver receives `&got_slot` on the stack (pushed by the PLT's
/// `plt0` trampoline), asks the kernel to resolve and patch the slot, then
/// **stores the resolved pointer over its stack argument and `ret`s to
/// it** — the ld.so idiom that violates return-address integrity and that
/// JCFI handles as a special case.
pub const MINIMAL_LD_SO: &str = r#"
.section text
.global __dl_resolve
__dl_resolve:
    push r0
    push r1
    push r2
    push r3
    push r4
    push r5
    pushf
    ld8 r1, [sp+56]     ; &got_slot pushed by plt0
    mov r0, 8           ; SYS_DLFIXUP
    syscall             ; r0 = target; kernel patched the slot
    mov r6, r0
    popf
    pop r5
    pop r4
    pop r3
    pop r2
    pop r1
    pop r0
    st8 [sp], r6        ; overwrite the argument with the target...
    ret                 ; ...and return *into* it (push+ret pattern)
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use janitizer_asm::{assemble, AsmOptions};
    use janitizer_link::{link, LinkOptions};
    use janitizer_obj::Image;

    fn build_exe(src: &str) -> Image {
        let o = assemble("exe.s", src, &AsmOptions::default()).expect("asm");
        link(&[o], &LinkOptions::executable("a.out")).expect("link")
    }

    fn build_ld_so() -> Image {
        let o = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).expect("asm");
        link(&[o], &LinkOptions::shared_object("ld.so")).expect("link")
    }

    fn run(store: &ModuleStore, exe: &str, opts: &LoadOptions) -> (Exit, Process) {
        let mut p = load_process(store, exe, opts).expect("load");
        let exit = p.run_native(100_000_000);
        (exit, p)
    }

    #[test]
    fn exit_code_roundtrip() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n mov r0, 0\n mov r1, 42\n syscall\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(42));
    }

    #[test]
    fn entry_return_value_becomes_exit_code() {
        // _start returns 7; the bootstrap turns that into exit(7).
        let exe = build_exe(".section text\n.global _start\n_start:\n mov r0, 7\n ret\n");
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(7));
    }

    #[test]
    fn write_syscall_captures_stdout() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             la r2, msg\n mov r1, 1\n mov r3, 5\n mov r0, 1\n syscall\n\
             mov r0, 0\n mov r1, 0\n syscall\n\
             .section rodata\nmsg: .ascii \"hello\"\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, p) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(0));
        assert_eq!(p.stdout_string(), "hello");
    }

    #[test]
    fn arithmetic_loop_computes() {
        // sum 1..=10 -> 55
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             mov r0, 0\n mov r2, 10\n\
             loop:\n add r0, r2\n sub r2, 1\n cmp r2, 0\n jne loop\n\
             ret\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(55));
    }

    #[test]
    fn data_and_bss_access() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             la r1, value\n ld8 r0, [r1]\n\
             la r2, buf\n st8 [r2], r0\n ld8 r3, [r2]\n\
             mov r0, r3\n ret\n\
             .section data\nvalue: .quad 1234\n\
             .section bss\nbuf: .space 64\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(1234));
    }

    #[test]
    fn wild_pointer_faults() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n mov r1, 0x123456\n ld8 r0, [r1]\n ret\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        let Exit::Fault(f) = exit else { panic!("expected fault, got {exit:?}") };
        assert!(matches!(f.kind, FaultKind::Mem(_)));
    }

    #[test]
    fn write_to_code_faults() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n la r1, _start\n st8 [r1], r1\n ret\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert!(matches!(exit, Exit::Fault(_)), "text is not writable");
    }

    fn callee_lib() -> Image {
        let o = assemble(
            "lib.s",
            ".section text\n.global add_five\nadd_five:\n add r0, 5\n ret\n\
             .global get_secret\nget_secret:\n la r0, secret\n ld8 r0, [r0]\n ret\n\
             .section data\n.global secret\nsecret: .quad 99\n",
            &AsmOptions { pic: true },
        )
        .expect("asm");
        link(&[o], &LinkOptions::shared_object("libfive.so")).expect("link")
    }

    fn plt_exe() -> Image {
        let o = assemble(
            "exe.s",
            ".section text\n.global _start\n_start:\n\
             mov r0, 10\n call add_five\n call add_five\n ret\n",
            &AsmOptions::default(),
        )
        .expect("asm");
        link(&[o], &LinkOptions::executable("a.out").needs("libfive.so")).expect("link")
    }

    #[test]
    fn cross_module_call_lazy_binding() {
        let mut store = ModuleStore::new();
        store.add(plt_exe());
        store.add(callee_lib());
        store.add(build_ld_so());
        let (exit, p) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(20), "10 + 5 + 5 through the PLT");
        assert_eq!(p.lazy_fixups, 1, "second call uses the patched GOT slot");
    }

    #[test]
    fn cross_module_call_eager_binding() {
        let mut store = ModuleStore::new();
        store.add(plt_exe());
        store.add(callee_lib());
        store.add(build_ld_so());
        let opts = LoadOptions {
            lazy_binding: false,
            ..LoadOptions::default()
        };
        let (exit, p) = run(&store, "a.out", &opts);
        assert_eq!(exit, Exit::Exited(20));
        assert_eq!(p.lazy_fixups, 0, "eager binding never hits the resolver");
    }

    #[test]
    fn lazy_binding_without_ld_so_fails_to_load() {
        let mut store = ModuleStore::new();
        store.add(plt_exe());
        store.add(callee_lib());
        let err = load_process(&store, "a.out", &LoadOptions::default()).unwrap_err();
        assert_eq!(err, LoadError::NoResolver);
    }

    #[test]
    fn ld_preload_interposes_symbols() {
        // An interposer that makes add_five add six instead.
        let interposer = {
            let o = assemble(
                "pre.s",
                ".section text\n.global add_five\nadd_five:\n add r0, 6\n ret\n",
                &AsmOptions { pic: true },
            )
            .unwrap();
            link(&[o], &LinkOptions::shared_object("libpre.so")).unwrap()
        };
        let mut store = ModuleStore::new();
        store.add(plt_exe());
        store.add(callee_lib());
        store.add(interposer);
        store.add(build_ld_so());
        let opts = LoadOptions {
            preload: vec!["libpre.so".into()],
            ..LoadOptions::default()
        };
        let (exit, _) = run(&store, "a.out", &opts);
        assert_eq!(exit, Exit::Exited(22), "preloaded add_five wins: 10+6+6");
    }

    #[test]
    fn pic_data_via_got() {
        let exe = {
            let o = assemble(
                "exe.s",
                ".section text\n.global _start\n_start:\n call get_secret\n ret\n",
                &AsmOptions::default(),
            )
            .unwrap();
            link(&[o], &LinkOptions::executable("a.out").needs("libfive.so")).unwrap()
        };
        let mut store = ModuleStore::new();
        store.add(exe);
        store.add(callee_lib());
        store.add(build_ld_so());
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(99), "PIC library reads its own data");
    }

    #[test]
    fn dlopen_and_indirect_call() {
        // The plugin is NOT in the needed list; only dlopen finds it.
        let plugin = {
            let o = assemble(
                "plg.s",
                ".section text\n.global plugin_work\nplugin_work:\n mov r0, 77\n ret\n",
                &AsmOptions { pic: true },
            )
            .unwrap();
            link(&[o], &LinkOptions::shared_object("libplugin.so")).unwrap()
        };
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             mov r0, 5\n la r1, name\n mov r2, 12\n syscall\n\
             mov r8, r0\n\
             mov r0, 6\n mov r1, r8\n la r2, symname\n mov r3, 11\n syscall\n\
             call r0\n ret\n\
             .section rodata\nname: .ascii \"libplugin.so\"\nsymname: .ascii \"plugin_work\"\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        store.add(plugin);
        let (exit, p) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(77));
        let plugin = p
            .modules
            .iter()
            .find(|m| m.image.name == "libplugin.so")
            .expect("plugin loaded");
        assert!(plugin.dlopened, "dlopen-loaded modules are marked");
        assert!(
            p.events
                .contains(&ProcessEvent::ModuleLoaded { id: plugin.id }),
            "driver sees a module-load event"
        );
    }

    #[test]
    fn jit_code_generation_and_execution() {
        // mmap an RWX page, write `mov r0, 123; ret` into it, call it.
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             mov r0, 3\n mov r1, 4096\n mov r2, 1\n syscall\n\
             mov r8, r0\n\
             mov r9, 0x12\n st1 [r8], r9\n\
             mov r9, 0\n st1 [r8+1], r9\n\
             mov r9, 123\n st4 [r8+2], r9\n\
             mov r9, 0x6c\n st1 [r8+6], r9\n\
             call r8\n ret\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(123), "dynamically generated code runs");
    }

    #[test]
    fn sbrk_heap_allocation() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             mov r0, 2\n mov r1, 4096\n syscall\n\
             mov r8, r0\n mov r9, 4242\n st8 [r8+100], r9\n ld8 r0, [r8+100]\n ret\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(4242));
    }

    #[test]
    fn canary_in_tls_is_nonzero_and_seeded() {
        let mut store = ModuleStore::new();
        store.add(build_exe(
            ".section text\n.global _start\n_start:\n rdtls r0, 0x28\n ret\n",
        ));
        let (exit, p) = run(&store, "a.out", &LoadOptions::default());
        let Exit::Exited(c) = exit else { panic!() };
        assert_eq!(c as u64, p.canary());
        assert_ne!(p.canary(), 0);
        // Different seed, different cookie.
        let opts = LoadOptions {
            seed: 999,
            ..LoadOptions::default()
        };
        let (exit2, _) = run(&store, "a.out", &opts);
        assert_ne!(exit, exit2);
    }

    #[test]
    fn init_sections_run_before_entry() {
        let exe = build_exe(
            ".section init\nsetup:\n la r8, flag\n mov r9, 1\n st8 [r8], r9\n ret\n\
             .section text\n.global _start\n_start:\n la r8, flag\n ld8 r0, [r8]\n ret\n\
             .section bss\nflag: .space 8\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(1), "init ran before _start");
    }

    #[test]
    fn out_of_fuel_detected() {
        let exe = build_exe(".section text\n.global _start\n_start:\nspin:\n jmp spin\n");
        let mut store = ModuleStore::new();
        store.add(exe);
        let mut p = load_process(&store, "a.out", &LoadOptions::default()).unwrap();
        assert_eq!(p.run_native(10_000), Exit::OutOfFuel);
        assert!(p.cycles >= 10_000);
    }

    #[test]
    fn getarg_syscall_reads_args() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             mov r0, 9\n mov r1, 1\n syscall\n ret\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let opts = LoadOptions {
            args: vec![11, 22, 33],
            ..LoadOptions::default()
        };
        let (exit, _) = run(&store, "a.out", &opts);
        assert_eq!(exit, Exit::Exited(22));
    }

    #[test]
    fn trap_faults() {
        let mut store = ModuleStore::new();
        store.add(build_exe(".section text\n.global _start\n_start:\n trap\n"));
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert!(matches!(
            exit,
            Exit::Fault(Fault {
                kind: FaultKind::Trap,
                ..
            })
        ));
    }

    #[test]
    fn stack_usage_push_pop() {
        let exe = build_exe(
            ".section text\n.global _start\n_start:\n\
             mov r8, 111\n push r8\n mov r8, 0\n pop r0\n ret\n",
        );
        let mut store = ModuleStore::new();
        store.add(exe);
        let (exit, _) = run(&store, "a.out", &LoadOptions::default());
        assert_eq!(exit, Exit::Exited(111));
    }
}
