//! Guest address space: disjoint permissioned regions with lazily-grown
//! backing buffers.

use std::fmt;

/// Access permissions of a mapped region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Perm {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perm {
    /// Read-only data.
    pub const R: Perm = Perm {
        r: true,
        w: false,
        x: false,
    };
    /// Read-write data.
    pub const RW: Perm = Perm {
        r: true,
        w: true,
        x: false,
    };
    /// Read-execute code.
    pub const RX: Perm = Perm {
        r: true,
        w: false,
        x: true,
    };
    /// Writable code (JIT regions).
    pub const RWX: Perm = Perm {
        r: true,
        w: true,
        x: true,
    };
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// The kind of access that faulted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// A memory fault: unmapped address or permission violation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemFault {
    /// Faulting guest address.
    pub addr: u64,
    /// Access kind.
    pub access: Access,
    /// Whether the address was mapped at all (false) or mapped without the
    /// needed permission (true).
    pub mapped: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.access {
            Access::Read => "read",
            Access::Write => "write",
            Access::Fetch => "fetch",
        };
        if self.mapped {
            write!(f, "permission violation on {what} at {:#x}", self.addr)
        } else {
            write!(f, "unmapped {what} at {:#x}", self.addr)
        }
    }
}

impl std::error::Error for MemFault {}

struct Region {
    start: u64,
    size: u64,
    perm: Perm,
    label: String,
    /// Backing store, grown on demand up to `size`.
    data: Vec<u8>,
}

impl Region {
    fn end(&self) -> u64 {
        self.start + self.size
    }
}

/// Sparse guest memory.
///
/// Regions are mapped explicitly with [`Memory::map`]; any access outside a
/// region faults, which is how wild pointers in the guest surface as
/// [`MemFault`]s instead of silent corruption.
#[derive(Default)]
pub struct Memory {
    regions: Vec<Region>,
    /// Bumped whenever executable bytes are written, so instruction-decode
    /// caches can invalidate (needed for JIT-generated code).
    code_generation: u64,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Memory");
        d.field("regions", &self.regions.len());
        d.field("code_generation", &self.code_generation);
        d.finish()
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps `[start, start+size)` with the given permissions.
    ///
    /// # Errors
    ///
    /// Returns `Err` (with the overlapping region's label) if the range
    /// overlaps an existing region or is empty.
    pub fn map(
        &mut self,
        start: u64,
        size: u64,
        perm: Perm,
        label: impl Into<String>,
    ) -> Result<(), String> {
        if size == 0 {
            return Err("cannot map empty region".into());
        }
        let end = start
            .checked_add(size)
            .ok_or_else(|| "region wraps the address space".to_string())?;
        for r in &self.regions {
            if start < r.end() && r.start < end {
                return Err(format!("overlaps region `{}`", r.label));
            }
        }
        let idx = self
            .regions
            .partition_point(|r| r.start < start);
        self.regions.insert(
            idx,
            Region {
                start,
                size,
                perm,
                label: label.into(),
                data: Vec::new(),
            },
        );
        Ok(())
    }

    /// Changes the permissions of the region starting exactly at `start`.
    pub fn protect(&mut self, start: u64, perm: Perm) -> Result<(), String> {
        let r = self
            .regions
            .iter_mut()
            .find(|r| r.start == start)
            .ok_or_else(|| format!("no region at {start:#x}"))?;
        if r.perm.x || perm.x {
            self.code_generation += 1;
        }
        r.perm = perm;
        Ok(())
    }

    /// Extends the region starting at `start` by `delta` bytes (sbrk-style).
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist or the extension would overlap
    /// the next region.
    pub fn grow(&mut self, start: u64, delta: u64) -> Result<(), String> {
        let idx = self
            .regions
            .iter()
            .position(|r| r.start == start)
            .ok_or_else(|| format!("no region at {start:#x}"))?;
        let new_end = self.regions[idx].end() + delta;
        if let Some(next) = self.regions.get(idx + 1) {
            if new_end > next.start {
                return Err(format!("growth collides with `{}`", next.label));
            }
        }
        self.regions[idx].size += delta;
        Ok(())
    }

    /// Generation counter for executable contents; bump means any decoded
    /// instruction cache must be flushed.
    pub fn code_generation(&self) -> u64 {
        self.code_generation
    }

    /// Whether `[addr, addr+len)` is fully inside one mapped region.
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        self.find(addr)
            .map(|i| addr + len <= self.regions[i].end())
            .unwrap_or(false)
    }

    /// The label of the region containing `addr`, if mapped.
    pub fn region_label(&self, addr: u64) -> Option<&str> {
        self.find(addr).map(|i| self.regions[i].label.as_str())
    }

    fn find(&self, addr: u64) -> Option<usize> {
        let idx = self.regions.partition_point(|r| r.start <= addr);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        (addr < r.end()).then_some(idx - 1)
    }

    fn access(
        &mut self,
        addr: u64,
        len: u64,
        access: Access,
    ) -> Result<(&mut Region, usize), MemFault> {
        let fault = |mapped| MemFault {
            addr,
            access,
            mapped,
        };
        let idx = self.find(addr).ok_or(fault(false))?;
        let r = &self.regions[idx];
        if addr + len > r.end() {
            return Err(fault(false));
        }
        let ok = match access {
            Access::Read => r.perm.r,
            Access::Write => r.perm.w,
            Access::Fetch => r.perm.x,
        };
        if !ok {
            return Err(fault(true));
        }
        if access == Access::Write && r.perm.x {
            self.code_generation += 1;
        }
        let r = &mut self.regions[idx];
        let off = (addr - r.start) as usize;
        let need = off + len as usize;
        if r.data.len() < need {
            r.data.resize(need, 0);
        }
        Ok((r, off))
    }

    /// Reads `len ≤ 8` bytes, zero-extended.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped or unreadable addresses.
    pub fn read_int(&mut self, addr: u64, len: u64) -> Result<u64, MemFault> {
        debug_assert!(len <= 8);
        let (r, off) = self.access(addr, len, Access::Read)?;
        let mut buf = [0u8; 8];
        buf[..len as usize].copy_from_slice(&r.data[off..off + len as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `len ≤ 8` bytes of `value`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for unmapped or unwritable addresses.
    pub fn write_int(&mut self, addr: u64, len: u64, value: u64) -> Result<(), MemFault> {
        debug_assert!(len <= 8);
        let (r, off) = self.access(addr, len, Access::Write)?;
        r.data[off..off + len as usize].copy_from_slice(&value.to_le_bytes()[..len as usize]);
        Ok(())
    }

    /// Copies bytes out of guest memory.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any byte is unmapped or unreadable.
    pub fn read_bytes(&mut self, addr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let (r, off) = self.access(addr, len, Access::Read)?;
        Ok(r.data[off..off + len as usize].to_vec())
    }

    /// Copies bytes into guest memory.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any byte is unmapped or unwritable.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let (r, off) = self.access(addr, bytes.len() as u64, Access::Write)?;
        r.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Host-privileged write that ignores the W permission (used by the
    /// loader to populate read-only and executable sections, and by the
    /// kernel-side lazy resolver to patch GOT slots).
    pub fn poke_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        let len = bytes.len() as u64;
        let fault = MemFault {
            addr,
            access: Access::Write,
            mapped: false,
        };
        let idx = self.find(addr).ok_or(fault)?;
        if addr + len > self.regions[idx].end() {
            return Err(fault);
        }
        if self.regions[idx].perm.x {
            self.code_generation += 1;
        }
        let r = &mut self.regions[idx];
        let off = (addr - r.start) as usize;
        let need = off + bytes.len();
        if r.data.len() < need {
            r.data.resize(need, 0);
        }
        r.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads bytes for instruction fetch (requires X permission).
    ///
    /// Returns up to `len` bytes, possibly fewer at a region's end.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] for non-executable or unmapped addresses.
    pub fn fetch_bytes(&mut self, addr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let fault = MemFault {
            addr,
            access: Access::Fetch,
            mapped: false,
        };
        let idx = self.find(addr).ok_or(fault)?;
        if !self.regions[idx].perm.x {
            return Err(MemFault {
                addr,
                access: Access::Fetch,
                mapped: true,
            });
        }
        let avail = self.regions[idx].end() - addr;
        let take = avail.min(len);
        let r = &mut self.regions[idx];
        let off = (addr - r.start) as usize;
        let need = off + take as usize;
        if r.data.len() < need {
            r.data.resize(need, 0);
        }
        Ok(r.data[off..off + take as usize].to_vec())
    }

    /// Lists mapped regions as `(start, size, perm, label)`.
    pub fn regions(&self) -> Vec<(u64, u64, Perm, &str)> {
        self.regions
            .iter()
            .map(|r| (r.start, r.size, r.perm, r.label.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Perm::RW, "data").unwrap();
        m.write_int(0x1008, 8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_int(0x1008, 8).unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_int(0x1008, 4).unwrap(), 0xcafe_f00d);
        assert_eq!(m.read_int(0x100c, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.read_int(0x1100, 8).unwrap(), 0, "untouched memory is zero");
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Perm::RW, "data").unwrap();
        let f = m.read_int(0x3000, 8).unwrap_err();
        assert!(!f.mapped);
        assert_eq!(f.access, Access::Read);
        // Straddling the end of a region faults too.
        assert!(m.read_int(0x1ffc, 8).is_err());
        assert!(m.write_int(0x1fff, 2, 0).is_err());
    }

    #[test]
    fn permissions_enforced() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100, Perm::R, "ro").unwrap();
        m.map(0x2000, 0x100, Perm::RX, "code").unwrap();
        assert!(m.read_int(0x1000, 8).is_ok());
        let f = m.write_int(0x1000, 8, 1).unwrap_err();
        assert!(f.mapped);
        assert!(m.fetch_bytes(0x2000, 4).is_ok());
        assert!(m.fetch_bytes(0x1000, 4).is_err(), "no exec on data");
        assert!(m.write_int(0x2000, 8, 1).is_err(), "no write on code");
        // poke bypasses W for the loader.
        m.poke_bytes(0x2000, &[1, 2, 3]).unwrap();
        assert_eq!(m.fetch_bytes(0x2000, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn overlapping_maps_rejected() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Perm::RW, "a").unwrap();
        assert!(m.map(0x1800, 0x1000, Perm::RW, "b").is_err());
        assert!(m.map(0x0800, 0x1000, Perm::RW, "c").is_err());
        assert!(m.map(0x0fff, 0x2002, Perm::RW, "d").is_err());
        m.map(0x2000, 0x1000, Perm::RW, "e").unwrap();
    }

    #[test]
    fn grow_extends_until_collision() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Perm::RW, "heap").unwrap();
        m.map(0x4000, 0x1000, Perm::RW, "other").unwrap();
        m.grow(0x1000, 0x1000).unwrap();
        assert!(m.is_mapped(0x1fff, 1));
        assert!(m.is_mapped(0x2fff, 1));
        assert!(m.grow(0x1000, 0x2000).is_err(), "would hit `other`");
    }

    #[test]
    fn code_generation_tracks_jit_writes() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Perm::RWX, "jit").unwrap();
        m.map(0x3000, 0x1000, Perm::RW, "data").unwrap();
        let g0 = m.code_generation();
        m.write_int(0x3000, 8, 1).unwrap();
        assert_eq!(m.code_generation(), g0, "data writes do not invalidate");
        m.write_int(0x1000, 8, 1).unwrap();
        assert!(m.code_generation() > g0, "JIT writes invalidate");
    }

    #[test]
    fn region_labels() {
        let mut m = Memory::new();
        m.map(0x1000, 0x100, Perm::RW, "stack").unwrap();
        assert_eq!(m.region_label(0x1050), Some("stack"));
        assert_eq!(m.region_label(0x5000), None);
    }
}
