//! The guest "kernel": syscall numbers and their host-side implementation.
//!
//! The number goes in `r0`, arguments in `r1`–`r5`, the result in `r0`.
//! `r0` is the only register clobbered.

use crate::cpu::{FaultKind, Step};
use crate::process::Process;
use janitizer_isa::Reg;

/// `exit(code)` — terminates the process.
pub const SYS_EXIT: u64 = 0;
/// `write(fd, ptr, len)` — appends to the captured stdout/stderr.
pub const SYS_WRITE: u64 = 1;
/// `sbrk(delta)` — grows the heap, returns the old break.
pub const SYS_SBRK: u64 = 2;
/// `mmap(len, flags)` — maps a fresh region; flag bit 0 requests RWX
/// (JIT) memory. Returns the base address.
pub const SYS_MMAP: u64 = 3;
/// `mmap_fixed(addr, len)` — maps RW memory at a fixed address (used by
/// the sanitizer runtime to establish shadow memory).
pub const SYS_MMAP_FIXED: u64 = 4;
/// `dlopen(name_ptr, name_len)` — loads a shared object and its
/// dependencies at run time; returns a module handle or `u64::MAX`.
pub const SYS_DLOPEN: u64 = 5;
/// `dlsym(handle, name_ptr, name_len)` — looks up an exported symbol in
/// the given module; returns its address or 0.
pub const SYS_DLSYM: u64 = 6;
/// `dlinit(handle)` — returns the module's init routine address (or 0),
/// exactly once; the caller is expected to invoke it.
pub const SYS_DLINIT: u64 = 7;
/// `dl_fixup(&got_slot)` — ld.so's lazy-binding work: resolves the symbol
/// for a GOT slot, patches the slot, returns the target address.
pub const SYS_DLFIXUP: u64 = 8;
/// `getarg(i)` — reads the i-th program argument (0 when absent).
pub const SYS_GETARG: u64 = 9;
/// `rand()` — deterministic pseudo-random u64 (per-process LCG).
pub const SYS_RAND: u64 = 10;
/// `cycles()` — current cycle count (a `rdtsc` stand-in).
pub const SYS_CYCLES: u64 = 11;
/// `abort(msg_ptr, msg_len)` — terminates with a diagnostic fault
/// (`__stack_chk_fail` and friends).
pub const SYS_ABORT: u64 = 12;
/// `note()` — increments the process's notification counter. Used by
/// instrumentation runtimes (e.g. the sanitizer allocator) to signal
/// host-side tools that guest-maintained metadata (shadow memory) changed.
pub const SYS_NOTE: u64 = 13;

/// Stable name of a syscall number (for telemetry and diagnostics).
pub fn syscall_name(num: u64) -> &'static str {
    match num {
        SYS_EXIT => "exit",
        SYS_WRITE => "write",
        SYS_SBRK => "sbrk",
        SYS_MMAP => "mmap",
        SYS_MMAP_FIXED => "mmap_fixed",
        SYS_DLOPEN => "dlopen",
        SYS_DLSYM => "dlsym",
        SYS_DLINIT => "dlinit",
        SYS_DLFIXUP => "dl_fixup",
        SYS_GETARG => "getarg",
        SYS_RAND => "rand",
        SYS_CYCLES => "cycles",
        SYS_ABORT => "abort",
        SYS_NOTE => "note",
        _ => "unknown",
    }
}

/// Executes the syscall selected by the guest's `r0`.
pub fn dispatch(p: &mut Process) -> Step {
    let num = p.cpu.reg(Reg::R0);
    janitizer_telemetry::event!("vm.syscall", no = num, name = syscall_name(num));
    janitizer_telemetry::counter_add("vm.syscalls", 1);
    let step = dispatch_inner(p, num);
    if let Step::Fault(kind) = &step {
        janitizer_telemetry::event!("vm.fault", pc = p.cpu.pc, kind = format!("{kind:?}"));
        janitizer_telemetry::flight::record(
            "vm.fault",
            janitizer_telemetry::flight::NO_MODULE,
            p.cpu.pc,
            num,
        );
    }
    step
}

fn dispatch_inner(p: &mut Process, num: u64) -> Step {
    let a1 = p.cpu.reg(Reg::R1);
    let a2 = p.cpu.reg(Reg::R2);
    let a3 = p.cpu.reg(Reg::R3);
    let ret = match num {
        SYS_EXIT => return Step::Exit(a1 as i64),
        SYS_WRITE => {
            let len = a3;
            match p.mem.read_bytes(a2, len) {
                Ok(bytes) => {
                    if a1 == 1 || a1 == 2 {
                        p.stdout.extend_from_slice(&bytes);
                    }
                    len
                }
                Err(f) => return Step::Fault(FaultKind::Mem(f)),
            }
        }
        SYS_SBRK => {
            let delta = a1 as i64;
            match p.sbrk(delta) {
                Ok(old) => old,
                Err(msg) => return Step::Fault(FaultKind::Abort(format!("sbrk failed: {msg}"))),
            }
        }
        SYS_MMAP => match p.mmap(a1, a2 & 1 != 0) {
            Ok(addr) => addr,
            Err(msg) => return Step::Fault(FaultKind::Abort(format!("mmap failed: {msg}"))),
        },
        SYS_MMAP_FIXED => match p.mmap_fixed(a1, a2) {
            Ok(addr) => addr,
            Err(msg) => {
                return Step::Fault(FaultKind::Abort(format!("mmap_fixed failed: {msg}")))
            }
        },
        SYS_DLOPEN => {
            let name = match read_str(p, a1, a2) {
                Ok(n) => n,
                Err(s) => return s,
            };
            match p.dlopen(&name) {
                Ok(handle) => handle as u64,
                Err(_) => u64::MAX,
            }
        }
        SYS_DLSYM => {
            let name = match read_str(p, a2, a3) {
                Ok(n) => n,
                Err(s) => return s,
            };
            p.dlsym(a1 as usize, &name).unwrap_or(0)
        }
        SYS_DLINIT => p.dlinit(a1 as usize).unwrap_or(0),
        SYS_DLFIXUP => match p.dl_fixup(a1) {
            Ok(target) => target,
            Err(sym) => return Step::Fault(FaultKind::UnresolvedSymbol(sym)),
        },
        SYS_GETARG => p.args.get(a1 as usize).copied().unwrap_or(0),
        SYS_RAND => p.next_rand(),
        SYS_CYCLES => p.cycles,
        SYS_NOTE => {
            p.note_counter += 1;
            0
        }
        SYS_ABORT => {
            let msg = read_str(p, a1, a2).unwrap_or_else(|_| "abort".into());
            return Step::Fault(FaultKind::Abort(msg));
        }
        n => return Step::Fault(FaultKind::BadSyscall(n)),
    };
    p.cpu.set_reg(Reg::R0, ret);
    Step::Next
}

fn read_str(p: &mut Process, ptr: u64, len: u64) -> Result<String, Step> {
    if len > 4096 {
        return Err(Step::Fault(FaultKind::Abort("string too long".into())));
    }
    match p.mem.read_bytes(ptr, len) {
        Ok(bytes) => Ok(String::from_utf8_lossy(&bytes).into_owned()),
        Err(f) => Err(Step::Fault(FaultKind::Mem(f))),
    }
}
