//! The guest process: loaded modules, memory layout, TLS, and run loops.

use crate::cpu::{execute, CpuState, Fault, FaultKind, Step};
use crate::loader;
use crate::mem::{Memory, Perm};
use janitizer_isa::{decode, Instr, TLS_BLOCK_SIZE, TLS_CANARY_OFFSET};
use janitizer_obj::Image;
use std::sync::Arc;

/// Address of the host-synthesized bootstrap code that runs module
/// initializers and then calls the entry point.
pub const BOOTSTRAP_BASE: u64 = 0x0010_0000;
/// First load address for position-independent modules.
pub const PIC_MODULE_BASE: u64 = 0x1000_0000;
/// Spacing between PIC module load addresses.
pub const PIC_MODULE_STRIDE: u64 = 0x0100_0000;
/// Heap (sbrk) base address.
pub const HEAP_BASE: u64 = 0x8000_0000;
/// Maximum heap size.
pub const HEAP_MAX: u64 = 0x3000_0000;
/// Base of the mmap allocation area (JIT regions and anonymous maps).
pub const MMAP_BASE: u64 = 0xC000_0000;
/// Stack region base.
pub const STACK_BASE: u64 = 0xE000_0000;
/// Stack size (grows down from `STACK_BASE + STACK_SIZE`).
pub const STACK_SIZE: u64 = 0x0010_0000;
/// Deterministic stack-canary cookie installed in TLS at load time.
pub const CANARY_VALUE: u64 = 0x00c0_ffee_5afe_0000;

/// A module mapped into a process.
#[derive(Clone, Debug)]
pub struct LoadedModule {
    /// The linked image (shared, as several processes may map it).
    pub image: Arc<Image>,
    /// Load bias: `runtime_address = bias + image_address`. Zero for
    /// non-PIC executables.
    pub base: u64,
    /// Index in [`Process::modules`].
    pub id: usize,
    /// Whether the module was loaded at run time via `dlopen` (and was
    /// therefore invisible to `ldd`-style static dependency discovery).
    pub dlopened: bool,
}

impl LoadedModule {
    /// Converts an image-relative address to its run-time address.
    ///
    /// Wrapping by definition: image addresses are validated against
    /// `MAX_IMAGE_SPAN` at decode time, so a wrap can only come from an
    /// in-memory hostile `Image`; the resulting address then faults at
    /// the memory layer instead of panicking here.
    #[inline]
    pub fn runtime_addr(&self, image_addr: u64) -> u64 {
        self.base.wrapping_add(image_addr)
    }

    /// Run-time address range occupied by the module.
    pub fn range(&self) -> (u64, u64) {
        let lo = self
            .image
            .sections
            .iter()
            .map(|s| s.addr)
            .min()
            .unwrap_or(0);
        (self.base + lo, self.base + self.image.image_end())
    }
}

/// Events the execution driver (e.g. the dynamic modifier) must observe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProcessEvent {
    /// A module was mapped (at load time or by `dlopen`).
    ModuleLoaded {
        /// Index into [`Process::modules`].
        id: usize,
    },
}

/// How execution finished.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Exit {
    /// Normal termination via the exit syscall.
    Exited(i64),
    /// A guest fault.
    Fault(Fault),
    /// The cycle budget ran out.
    OutOfFuel,
}

impl Exit {
    /// The exit code, if the process terminated normally.
    pub fn code(&self) -> Option<i64> {
        match self {
            Exit::Exited(c) => Some(*c),
            _ => None,
        }
    }
}

/// A single-threaded guest process.
pub struct Process {
    /// Guest memory.
    pub mem: Memory,
    /// Architectural register state.
    pub cpu: CpuState,
    /// Thread-local storage block (canary cookie, instrumentation spill
    /// slots).
    pub tls: Vec<u8>,
    /// Modules in load order; index is the module id / dlopen handle.
    pub modules: Vec<LoadedModule>,
    /// Symbol-resolution scope: module ids in search order.
    pub scope: Vec<usize>,
    /// Captured stdout/stderr bytes.
    pub stdout: Vec<u8>,
    /// Program arguments, read by the guest via `getarg`.
    pub args: Vec<u64>,
    /// Executed-instruction count.
    pub insns: u64,
    /// Accumulated cycle count (the performance metric).
    pub cycles: u64,
    /// Pending events for the execution driver.
    pub events: Vec<ProcessEvent>,
    /// Number of lazy PLT fixups performed.
    pub lazy_fixups: u64,
    /// Generic notification counter bumped by the `note` syscall (see
    /// `syscall::SYS_NOTE`); host tools use it as a change epoch.
    pub note_counter: u64,
    /// Module store used to satisfy `dlopen`.
    pub(crate) store: loader::ModuleStore,
    /// Whether PLT GOT slots are bound lazily.
    pub(crate) lazy_binding: bool,
    pub(crate) brk: u64,
    pub(crate) mmap_next: u64,
    pub(crate) rng: u64,
    pub(crate) inits_pending: Vec<usize>,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("modules", &self.modules.len())
            .field("pc", &format_args!("{:#x}", self.cpu.pc))
            .field("insns", &self.insns)
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl Process {
    pub(crate) fn empty(store: loader::ModuleStore, lazy_binding: bool, seed: u64) -> Process {
        let mut tls = vec![0u8; TLS_BLOCK_SIZE as usize];
        tls[TLS_CANARY_OFFSET as usize..TLS_CANARY_OFFSET as usize + 8]
            .copy_from_slice(&(CANARY_VALUE ^ seed.rotate_left(17)).to_le_bytes());
        Process {
            mem: Memory::new(),
            cpu: CpuState::default(),
            tls,
            modules: Vec::new(),
            scope: Vec::new(),
            stdout: Vec::new(),
            args: Vec::new(),
            insns: 0,
            cycles: 0,
            events: Vec::new(),
            lazy_fixups: 0,
            note_counter: 0,
            store,
            lazy_binding,
            brk: HEAP_BASE,
            mmap_next: MMAP_BASE,
            rng: seed | 1,
            inits_pending: Vec::new(),
        }
    }

    /// The canary cookie installed in TLS.
    pub fn canary(&self) -> u64 {
        self.read_tls(TLS_CANARY_OFFSET)
    }

    /// Reads an 8-byte TLS slot (out-of-range offsets read as 0).
    pub fn read_tls(&self, off: i32) -> u64 {
        let off = off as usize;
        if off + 8 <= self.tls.len() {
            u64::from_le_bytes(self.tls[off..off + 8].try_into().unwrap())
        } else {
            0
        }
    }

    /// Writes an 8-byte TLS slot (out-of-range offsets are ignored).
    pub fn write_tls(&mut self, off: i32, v: u64) {
        let off = off as usize;
        if off + 8 <= self.tls.len() {
            self.tls[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// The module whose mapped range contains `addr`, if any.
    pub fn module_containing(&self, addr: u64) -> Option<&LoadedModule> {
        self.modules.iter().find(|m| {
            let (lo, hi) = m.range();
            addr >= lo && addr < hi
        })
    }

    /// Resolves an exported symbol by search order (`scope`).
    pub fn resolve_symbol(&self, name: &str) -> Option<u64> {
        for &id in &self.scope {
            let m = &self.modules[id];
            if let Some(sym) = m.image.export(name) {
                return Some(m.runtime_addr(sym.value));
            }
        }
        None
    }

    /// sbrk: grows (or queries, with `delta == 0`) the heap.
    pub(crate) fn sbrk(&mut self, delta: i64) -> Result<u64, String> {
        let old = self.brk;
        if delta < 0 {
            // Shrinking is accepted but the mapping is retained.
            self.brk = self.brk.saturating_add_signed(delta).max(HEAP_BASE);
            return Ok(old);
        }
        let new = old + delta as u64;
        if new > HEAP_BASE + HEAP_MAX {
            return Err("out of heap".into());
        }
        if old == HEAP_BASE && delta > 0 {
            self.mem.map(HEAP_BASE, delta as u64, Perm::RW, "heap")?;
        } else if delta > 0 {
            self.mem.grow(HEAP_BASE, delta as u64)?;
        }
        self.brk = new;
        Ok(old)
    }

    /// mmap: allocates a fresh region (RWX when `exec`).
    pub(crate) fn mmap(&mut self, len: u64, exec: bool) -> Result<u64, String> {
        let len = len.max(1).div_ceil(4096) * 4096;
        let addr = self.mmap_next;
        self.mem.map(
            addr,
            len,
            if exec { Perm::RWX } else { Perm::RW },
            if exec { "jit" } else { "mmap" },
        )?;
        self.mmap_next += len + 4096;
        Ok(addr)
    }

    /// mmap at a fixed address (sanitizer shadow).
    pub(crate) fn mmap_fixed(&mut self, addr: u64, len: u64) -> Result<u64, String> {
        self.mem.map(addr, len, Perm::RW, "shadow")?;
        Ok(addr)
    }

    /// Deterministic per-process pseudo-random generator.
    pub(crate) fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// `dlopen`: loads a module (and its dependencies) at run time.
    ///
    /// # Errors
    ///
    /// Returns an error string if the module is unknown or loading fails.
    pub fn dlopen(&mut self, name: &str) -> Result<usize, String> {
        if let Some(m) = self.modules.iter().find(|m| m.image.name == name) {
            return Ok(m.id);
        }
        loader::load_into(self, name, true).map_err(|e| e.to_string())
    }

    /// `dlsym`: exported-symbol lookup within one module.
    pub fn dlsym(&self, handle: usize, name: &str) -> Option<u64> {
        let m = self.modules.get(handle)?;
        m.image.export(name).map(|s| m.runtime_addr(s.value))
    }

    /// `dlinit`: returns a pending init routine address for the handle.
    pub fn dlinit(&mut self, handle: usize) -> Option<u64> {
        if let Some(pos) = self.inits_pending.iter().position(|&id| id == handle) {
            self.inits_pending.remove(pos);
            let m = self.modules.get(handle)?;
            return m.image.init.map(|i| m.runtime_addr(i));
        }
        None
    }

    /// ld.so's fixup: resolves the PLT symbol owning `got_slot`, patches
    /// the slot and returns the target.
    ///
    /// # Errors
    ///
    /// Returns the symbol name if no loaded module exports it.
    pub fn dl_fixup(&mut self, got_slot: u64) -> Result<u64, String> {
        let (sym, _mid) = self
            .modules
            .iter()
            .find_map(|m| {
                let (lo, hi) = m.range();
                if got_slot < lo || got_slot >= hi {
                    return None;
                }
                let image_off = got_slot - m.base;
                m.image
                    .plt
                    .iter()
                    .find(|p| p.got_offset == image_off)
                    .map(|p| (p.symbol.clone(), m.id))
            })
            .ok_or_else(|| format!("<no PLT slot at {got_slot:#x}>"))?;
        let target = self.resolve_symbol(&sym).ok_or(sym)?;
        self.mem
            .poke_bytes(got_slot, &target.to_le_bytes())
            .map_err(|f| f.to_string())?;
        self.lazy_fixups += 1;
        Ok(target)
    }

    /// Fetches and decodes the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] on fetch or decode failure.
    pub fn fetch_decode(&mut self, pc: u64) -> Result<(Instr, u64), Fault> {
        let bytes = self
            .mem
            .fetch_bytes(pc, janitizer_isa::MAX_INSTR_LEN as u64)
            .map_err(|m| Fault {
                pc,
                kind: FaultKind::Mem(m),
            })?;
        let (insn, len) = decode(&bytes, 0).map_err(|e| Fault {
            pc,
            kind: FaultKind::Decode(e),
        })?;
        Ok((insn, pc + len as u64))
    }

    /// Runs the process natively (no instrumentation) until exit, fault,
    /// or `fuel` cycles.
    pub fn run_native(&mut self, fuel: u64) -> Exit {
        let cycles_at_entry = self.cycles;
        let exit = self.run_native_inner(fuel);
        janitizer_telemetry::cycles("run;native", self.cycles.saturating_sub(cycles_at_entry));
        exit
    }

    fn run_native_inner(&mut self, fuel: u64) -> Exit {
        let mut cache: crate::PcMap<(Instr, u64)> = crate::PcMap::default();
        let mut cache_gen = self.mem.code_generation();
        loop {
            if self.cycles >= fuel {
                return Exit::OutOfFuel;
            }
            if self.mem.code_generation() != cache_gen {
                cache.clear();
                cache_gen = self.mem.code_generation();
            }
            let pc = self.cpu.pc;
            let (insn, next_pc) = match cache.get(&pc) {
                Some(&v) => v,
                None => match self.fetch_decode(pc) {
                    Ok(v) => {
                        cache.insert(pc, v);
                        v
                    }
                    Err(f) => return Exit::Fault(f),
                },
            };
            self.insns += 1;
            self.cycles += insn.cost();
            match execute(self, &insn, next_pc) {
                Step::Next => self.cpu.pc = next_pc,
                Step::Jump(t) => self.cpu.pc = t,
                Step::Exit(c) => return Exit::Exited(c),
                Step::Fault(kind) => return Exit::Fault(Fault { pc, kind }),
            }
        }
    }

    /// The captured stdout as UTF-8 (lossy).
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}
