//! The program loader: `ldd`-style dependency closure, section mapping,
//! dynamic relocation, LD_PRELOAD, lazy/eager PLT binding and the
//! bootstrap sequence.

use crate::mem::Perm;
use crate::process::{
    LoadedModule, Process, ProcessEvent, BOOTSTRAP_BASE, PIC_MODULE_BASE, PIC_MODULE_STRIDE,
    STACK_BASE, STACK_SIZE,
};
use janitizer_isa::{Instr, Reg};
use janitizer_link::RESOLVER_SYMBOL;
use janitizer_obj::{DynTarget, Image, SectionKind};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An in-memory "filesystem" of linked images, keyed by module name.
///
/// Stands in for the directories the dynamic linker would search; also
/// consulted by the `dlopen` syscall at run time.
#[derive(Clone, Default)]
pub struct ModuleStore {
    images: HashMap<String, Arc<Image>>,
}

impl fmt::Debug for ModuleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModuleStore")
            .field("modules", &self.images.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ModuleStore {
    /// Creates an empty store.
    pub fn new() -> ModuleStore {
        ModuleStore::default()
    }

    /// Adds an image under its own name, returning the shared handle.
    pub fn add(&mut self, image: Image) -> Arc<Image> {
        let arc = Arc::new(image);
        self.images.insert(arc.name.clone(), Arc::clone(&arc));
        arc
    }

    /// Looks up an image by name.
    pub fn get(&self, name: &str) -> Option<Arc<Image>> {
        self.images.get(name).cloned()
    }

    /// Names of all stored modules.
    pub fn names(&self) -> Vec<&str> {
        self.images.keys().map(String::as_str).collect()
    }
}

/// Loader configuration.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Modules whose exports take precedence over ordinary libraries
    /// (LD_PRELOAD semantics — how the paper's sanitizer interposes on the
    /// allocator, §4.1).
    pub preload: Vec<String>,
    /// Bind PLT slots lazily through the ld.so resolver (`true`, the
    /// default) or eagerly at load time.
    pub lazy_binding: bool,
    /// Program arguments, readable via the `getarg` syscall.
    pub args: Vec<u64>,
    /// Seed for the process RNG and the stack-canary cookie.
    pub seed: u64,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            preload: Vec::new(),
            lazy_binding: true,
            args: Vec::new(),
            seed: 0x4a41_4e49_5449_5a45, // "JANITIZE"
        }
    }
}

/// Errors produced while building a process image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoadError {
    /// The named module is not in the store.
    ModuleNotFound(String),
    /// A region could not be mapped.
    MapFailed(String),
    /// An eagerly-bound symbol could not be resolved.
    UnresolvedSymbol {
        /// The symbol name.
        symbol: String,
        /// Module whose relocation referenced it.
        module: String,
    },
    /// Lazy binding was requested but no module exports the resolver.
    NoResolver,
    /// Two non-PIC modules were requested (their addresses would clash).
    NonPicConflict(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::ModuleNotFound(m) => write!(f, "module `{m}` not found"),
            LoadError::MapFailed(m) => write!(f, "mapping failed: {m}"),
            LoadError::UnresolvedSymbol { symbol, module } => {
                write!(f, "unresolved symbol `{symbol}` needed by `{module}`")
            }
            LoadError::NoResolver => write!(f, "lazy binding requires an ld.so module exporting `{RESOLVER_SYMBOL}`"),
            LoadError::NonPicConflict(m) => {
                write!(f, "cannot load second non-PIC module `{m}`")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Builds a ready-to-run [`Process`] for `exe` (which must be in `store`),
/// mapping it, its `ldd`-discoverable dependency closure, any preloads and
/// (if present) the `ld.so` module, applying dynamic relocations, and
/// synthesizing the bootstrap that runs `.init` routines before the entry
/// point.
///
/// # Errors
///
/// Returns a [`LoadError`] if a module is missing, mapping fails, or an
/// eagerly-bound symbol cannot be resolved.
pub fn load_process(
    store: &ModuleStore,
    exe: &str,
    opts: &LoadOptions,
) -> Result<Process, LoadError> {
    let mut p = Process::empty(store.clone(), opts.lazy_binding, opts.seed);
    p.args = opts.args.clone();

    // Stack.
    p.mem
        .map(STACK_BASE, STACK_SIZE, Perm::RW, "stack")
        .map_err(LoadError::MapFailed)?;
    p.cpu.set_reg(Reg::SP, STACK_BASE + STACK_SIZE - 64);

    // Roots in resolution-scope order: exe, preloads, then (transitively)
    // needed libraries; ld.so goes last when available.
    let mut roots: Vec<String> = vec![exe.to_string()];
    roots.extend(opts.preload.iter().cloned());
    let new_ids = load_closure(&mut p, &roots)?;
    if store.get("ld.so").is_some() && !p.modules.iter().any(|m| m.image.name == "ld.so") {
        load_closure(&mut p, &["ld.so".to_string()])?;
    }
    // Apply relocations now that the whole static closure is mapped.
    let all_ids: Vec<usize> = (0..p.modules.len()).collect();
    for id in &all_ids {
        apply_relocs(&mut p, *id)?;
    }
    let _ = new_ids;

    // Bootstrap: run every module's `.init` (dependencies first), then the
    // entry point, then exit with its return value.
    let exe_module = &p.modules[0];
    let entry = exe_module.runtime_addr(exe_module.image.entry);
    let mut inits: Vec<u64> = p
        .modules
        .iter()
        .rev()
        .filter_map(|m| m.image.init.map(|i| m.runtime_addr(i)))
        .collect();
    inits.push(entry);
    let mut code = Vec::new();
    for target in inits {
        let pc_after = BOOTSTRAP_BASE + code.len() as u64 + 5;
        Instr::Call {
            rel: (target as i64 - pc_after as i64) as i32,
        }
        .encode(&mut code);
    }
    // exit(r0)
    Instr::MovRr { rd: Reg::R1, rs: Reg::R0 }.encode(&mut code);
    Instr::MovI32 { rd: Reg::R0, imm: 0 }.encode(&mut code);
    Instr::Syscall.encode(&mut code);
    p.mem
        .map(
            BOOTSTRAP_BASE,
            (code.len() as u64).max(64),
            Perm::RX,
            "bootstrap",
        )
        .map_err(LoadError::MapFailed)?;
    p.mem
        .poke_bytes(BOOTSTRAP_BASE, &code)
        .map_err(|f| LoadError::MapFailed(f.to_string()))?;
    p.cpu.pc = BOOTSTRAP_BASE;
    Ok(p)
}

/// Maps `name` (and its unseen dependencies) into the process at run time
/// on behalf of `dlopen`; relocations for the newly loaded modules are
/// applied immediately and their init routines queued for `dlinit`.
///
/// Returns the module id (dlopen handle).
pub(crate) fn load_into(p: &mut Process, name: &str, dlopened: bool) -> Result<usize, LoadError> {
    let new_ids = load_closure(p, &[name.to_string()])?;
    for id in &new_ids {
        p.modules[*id].dlopened = dlopened;
        apply_relocs(p, *id)?;
    }
    if dlopened {
        p.inits_pending.extend(new_ids.iter().copied());
    }
    let id = p
        .modules
        .iter()
        .find(|m| m.image.name == name)
        .map(|m| m.id)
        .expect("just loaded");
    Ok(id)
}

/// Phase 1: maps the given roots and their dependency closure (BFS),
/// skipping modules that are already loaded. Returns the new module ids in
/// load order and appends them to the resolution scope.
fn load_closure(p: &mut Process, roots: &[String]) -> Result<Vec<usize>, LoadError> {
    let mut queue: Vec<String> = roots.to_vec();
    let mut new_ids = Vec::new();
    let mut qi = 0;
    while qi < queue.len() {
        let name = queue[qi].clone();
        qi += 1;
        if p.modules.iter().any(|m| m.image.name == name) {
            continue;
        }
        let image = p
            .store
            .get(&name)
            .ok_or_else(|| LoadError::ModuleNotFound(name.clone()))?;
        let id = map_module(p, image)?;
        new_ids.push(id);
        p.scope.push(id);
        for dep in &p.modules[id].image.needed.clone() {
            if !queue.contains(dep) {
                queue.push(dep.clone());
            }
        }
    }
    Ok(new_ids)
}

/// Maps one module's sections and registers it, without relocating.
fn map_module(p: &mut Process, image: Arc<Image>) -> Result<usize, LoadError> {
    let base = if image.pic {
        let pic_count = p.modules.iter().filter(|m| m.image.pic).count() as u64;
        PIC_MODULE_BASE + pic_count * PIC_MODULE_STRIDE
    } else {
        if p.modules.iter().any(|m| !m.image.pic) {
            return Err(LoadError::NonPicConflict(image.name.clone()));
        }
        0
    };
    for sec in &image.sections {
        let perm = match sec.kind {
            k if k.is_code() => Perm::RX,
            SectionKind::Rodata => Perm::R,
            _ => Perm::RW,
        };
        if sec.mem_size == 0 {
            continue;
        }
        let map_addr = base
            .checked_add(sec.addr)
            .filter(|a| a.checked_add(sec.mem_size).is_some())
            .ok_or_else(|| {
                LoadError::MapFailed(format!(
                    "{}{} wraps the address space",
                    image.name,
                    sec.kind.name()
                ))
            })?;
        p.mem
            .map(
                map_addr,
                sec.mem_size,
                perm,
                format!("{}{}", image.name, sec.kind.name()),
            )
            .map_err(LoadError::MapFailed)?;
        if !sec.data.is_empty() {
            p.mem
                .poke_bytes(map_addr, &sec.data)
                .map_err(|f| LoadError::MapFailed(f.to_string()))?;
        }
    }
    let id = p.modules.len();
    p.modules.push(LoadedModule {
        image,
        base,
        id,
        dlopened: false,
    });
    janitizer_telemetry::event!(
        "vm.module_load",
        id = id,
        name = p.modules[id].image.name.as_str(),
        base = base,
    );
    janitizer_telemetry::flight::record_for(
        "vm.module_load",
        p.modules[id].image.name.as_str(),
        id as u64,
        base,
    );
    p.events.push(ProcessEvent::ModuleLoaded { id });
    Ok(id)
}

/// Phase 2: applies one module's dynamic relocations.
fn apply_relocs(p: &mut Process, id: usize) -> Result<(), LoadError> {
    let m = p.modules[id].clone();
    let plt0 = m
        .image
        .section(SectionKind::Plt)
        .map(|s| m.runtime_addr(s.addr));
    let plt_slots: Vec<u64> = m.image.plt.iter().map(|e| e.got_offset).collect();
    for rel in &m.image.dyn_relocs {
        let slot_addr = m.runtime_addr(rel.offset);
        let value = match &rel.target {
            DynTarget::Base(off) => m.runtime_addr(*off),
            DynTarget::Symbol(sym) => {
                let is_plt_slot = plt_slots.contains(&rel.offset);
                if is_plt_slot && p.lazy_binding && sym != RESOLVER_SYMBOL {
                    // Lazy: point the slot at this module's plt0 trampoline.
                    plt0.ok_or_else(|| LoadError::MapFailed("plt slot without plt".into()))?
                } else {
                    match p.resolve_symbol(sym) {
                        Some(v) => v,
                        None if sym == RESOLVER_SYMBOL => {
                            if p.lazy_binding && !plt_slots.is_empty() {
                                return Err(LoadError::NoResolver);
                            }
                            0 // eager mode never calls through got[0]
                        }
                        None if is_plt_slot => {
                            // Eager binding of a function nothing exports.
                            return Err(LoadError::UnresolvedSymbol {
                                symbol: sym.clone(),
                                module: m.image.name.clone(),
                            });
                        }
                        None => {
                            return Err(LoadError::UnresolvedSymbol {
                                symbol: sym.clone(),
                                module: m.image.name.clone(),
                            })
                        }
                    }
                }
            }
        };
        p.mem
            .poke_bytes(slot_addr, &value.to_le_bytes())
            .map_err(|f| LoadError::MapFailed(f.to_string()))?;
    }
    Ok(())
}
