//! # Baseline comparators
//!
//! Re-implementations of the *policies and cost structures* of the tools
//! the Janitizer paper compares against, on the same substrate:
//!
//! * [`Memcheck`] — Valgrind-style dynamic-only memory checking: heavy
//!   translation, clean-call-priced checks on every access, a 16-byte
//!   redzone allocator, **no** stack tracking (the source of its Juliet
//!   false negatives).
//! * [`Retrowrite`] — static-only binary ASan: zero run-time translation
//!   overhead and liveness-optimized checks, but **only applicable to
//!   position-independent, cleanly-reassembleable binaries**
//!   ([`retrowrite_applicable`]) and blind to `dlopen`ed/JIT code.
//! * [`CfiPolicy::BinCfi`] — static CFI with the weaker policies of Zhang & Sekar:
//!   forward targets are any scanned constant at an instruction boundary;
//!   returns may go to any call-preceded instruction (no shadow stack).
//!   Also refuses binaries whose code/data mix breaks reassembly.
//! * [`CfiPolicy::LockdownStrong`]/[`CfiPolicy::LockdownWeak`] — dynamic-only CFI on a lighter translator: precise
//!   shadow stack, strong-or-weak forward policy. The **strong** policy
//!   only allows inter-module calls to exported-and-imported symbols, so
//!   stack-passed callbacks (qsort comparators) raise false positives —
//!   the soundness failure of paper §6.2.2.

use janitizer_core::{
    Probe, ProbeResult, Report, SecurityPlugin, StaticContext,
};
use janitizer_dbt::{
    CostModel, DecodedBlock, ProbeClass, ProbeSite, SiteOrigin, TbItem, ViolationKind,
};
use janitizer_isa::Instr;
use janitizer_jasan::{check_access, map_shadow, shadow_mapped};
use janitizer_jcfi::{CfiModuleInfo, CtiKind, SiteStat};
use janitizer_obj::Image;
use janitizer_rules::RewriteRule;
use janitizer_vm::Process;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

/// Module name of Memcheck's interposed allocator (16-byte redzones).
pub const MEMCHECK_RT: &str = "libmemcheck_rt.so";

/// Builds Memcheck's allocator runtime.
pub fn memcheck_runtime() -> Image {
    janitizer_jasan::runtime_module_with(MEMCHECK_RT, 16)
}

/// Valgrind-like engine costs: software MMU and heavyweight translation.
pub fn memcheck_costs() -> CostModel {
    CostModel {
        translate_per_insn: 220,
        block_build: 900,
        indirect_lookup: 30,
        chain_hit: 18,
        clean_call: 120,
    }
}

/// Lockdown's lighter translator (libdetox) costs.
pub fn lockdown_costs() -> CostModel {
    CostModel {
        translate_per_insn: 30,
        block_build: 180,
        indirect_lookup: 16,
        chain_hit: 6,
        clean_call: 100,
    }
}

/// Static rewriters run the program natively: no translation engine.
pub fn static_rewriter_costs() -> CostModel {
    CostModel {
        translate_per_insn: 0,
        block_build: 0,
        indirect_lookup: 0,
        chain_hit: 0,
        clean_call: 0,
    }
}

// ---------------------------------------------------------------------
// Memcheck (Valgrind-like)
// ---------------------------------------------------------------------

/// Valgrind/Memcheck-like dynamic-only memory checker.
///
/// Run it with `dynamic_only = true` and [`memcheck_costs`]; preload
/// [`MEMCHECK_RT`].
#[derive(Debug, Default)]
pub struct Memcheck {
    rt_range: Option<(u64, u64)>,
}

/// Per-access check priced as a clean call plus shadow-state work.
const MEMCHECK_CHECK_COST: u64 = 55;
/// Definedness-propagation cost added to every non-memory instruction.
const MEMCHECK_PROPAGATE_COST: u64 = 4;

impl Memcheck {
    /// Creates the tool.
    pub fn new() -> Memcheck {
        Memcheck::default()
    }
}

impl SecurityPlugin for Memcheck {
    fn name(&self) -> &str {
        "memcheck"
    }

    fn static_pass(&self, _image: &Image, _ctx: &StaticContext) -> Vec<RewriteRule> {
        Vec::new() // dynamic-only: there is no static pass
    }

    fn on_start(&mut self, proc: &mut Process) {
        if !shadow_mapped(&proc.mem) {
            map_shadow(&mut proc.mem).expect("shadow mapping");
        }
    }

    fn on_module_load(
        &mut self,
        proc: &mut Process,
        module_id: usize,
        _rules: Option<&janitizer_rules::RuleTable>,
    ) {
        let m = &proc.modules[module_id];
        if m.image.name == MEMCHECK_RT {
            self.rt_range = Some(m.range());
        }
    }

    fn instrument_static(
        &mut self,
        proc: &mut Process,
        block: &DecodedBlock,
        _rules: &janitizer_core::BlockRules<'_>,
    ) -> Vec<TbItem> {
        // Memcheck has no static mode; treat as dynamic.
        self.instrument_dynamic(proc, block)
    }

    fn instrument_dynamic(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        let in_rt = self
            .rt_range
            .map(|(lo, hi)| block.start >= lo && block.start < hi)
            .unwrap_or(false);
        let mut items = Vec::new();
        for &(pc, insn, next) in &block.insns {
            if !in_rt {
                if let Some(m) = insn.mem_access() {
                    let size = m.size.bytes();
                    items.push(TbItem::Probe(Probe {
                        site: Some(ProbeSite {
                            tool: "memcheck",
                            kind: "addr-check",
                            pc,
                            class: ProbeClass::CleanCall,
                            origin: SiteOrigin::Dynamic,
                        }),
                        cost: MEMCHECK_CHECK_COST,
                        run: Box::new(move |p: &mut Process| {
                            let mut addr =
                                p.cpu.reg(m.base).wrapping_add(m.disp as i64 as u64);
                            if let Some(idx) = m.idx {
                                addr = addr.wrapping_add(p.cpu.reg(idx) << m.scale);
                            }
                            // No stack tracking: Valgrind's addressability
                            // map treats the whole stack as valid.
                            if p.mem.region_label(addr) == Some("stack") {
                                return ProbeResult::Ok;
                            }
                            match check_access(p, addr, size) {
                                Some(kind) if kind != ViolationKind::StackBufferOverflow => {
                                    ProbeResult::Violation(Report {
                                        pc,
                                        kind,
                                        details: format!(
                                            "{} of size {size} at {addr:#x}",
                                            if m.is_store { "WRITE" } else { "READ" }
                                        ),
                                    })
                                }
                                _ => ProbeResult::Ok,
                            }
                        }),
                    }));
                } else if !insn.is_cti() {
                    // V-bit propagation through ALU state.
                    items.push(TbItem::Probe(Probe {
                        cost: MEMCHECK_PROPAGATE_COST,
                        run: Box::new(|_| ProbeResult::Ok),
                        site: Some(ProbeSite {
                            tool: "memcheck",
                            kind: "vbit-propagate",
                            pc,
                            class: ProbeClass::CleanCall,
                            origin: SiteOrigin::Dynamic,
                        }),
                    }));
                }
            }
            items.push(TbItem::Guest(pc, insn, next));
        }
        items
    }
}

// ---------------------------------------------------------------------
// RetroWrite (static-only binary ASan)
// ---------------------------------------------------------------------

/// Why RetroWrite cannot process a binary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RetrowriteError {
    /// The module is position-dependent; symbolization needs relocations.
    NotPic(String),
    /// Linear-sweep reassembly fails (data interleaved with code).
    ReassemblyUnsound(String),
}

impl std::fmt::Display for RetrowriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrowriteError::NotPic(m) => {
                write!(f, "retrowrite: `{m}` is not position-independent")
            }
            RetrowriteError::ReassemblyUnsound(m) => {
                write!(f, "retrowrite: `{m}` does not reassemble cleanly")
            }
        }
    }
}

impl std::error::Error for RetrowriteError {}

/// Whether an image survives linear-sweep reassembly: every byte of every
/// code section must decode. Inline jump tables and other data-in-text
/// break this — the unsoundness static-only rewriting cannot avoid
/// (paper §2.1).
pub fn reassembly_sound(image: &Image) -> bool {
    // A *rebasing* relocation that patches bytes inside a code section is
    // data embedded in code (a PIC jump table in .text). Symbol
    // relocations in code are just symbolized immediates, which
    // reassembly handles fine.
    for rel in &image.dyn_relocs {
        if matches!(rel.target, janitizer_obj::DynTarget::Base(_))
            && image
                .section_containing(rel.offset)
                .map(|s| s.kind.is_code())
                .unwrap_or(false)
        {
            return false;
        }
    }
    for sec in image.code_sections() {
        let mut off = 0usize;
        while off < sec.data.len() {
            match janitizer_isa::decode(&sec.data, off) {
                Ok((_, next)) => off = next,
                Err(_) => return false,
            }
        }
    }
    true
}

/// Checks RetroWrite's applicability to a program (the main executable
/// and every statically-known module).
///
/// # Errors
///
/// Returns the first [`RetrowriteError`] encountered.
pub fn retrowrite_applicable(images: &[&Image]) -> Result<(), RetrowriteError> {
    for img in images {
        if !img.pic {
            return Err(RetrowriteError::NotPic(img.name.clone()));
        }
        if !reassembly_sound(img) {
            return Err(RetrowriteError::ReassemblyUnsound(img.name.clone()));
        }
    }
    Ok(())
}

/// RetroWrite-like static-only sanitizer: JASan's static instrumentation
/// (it uses the same liveness trick, paper footnote 10) with **no dynamic
/// fallback** — statically unseen code runs unchecked — and zero
/// translation overhead ([`static_rewriter_costs`]).
#[derive(Debug)]
pub struct Retrowrite {
    inner: janitizer_jasan::Jasan,
}

impl Retrowrite {
    /// Creates the tool.
    pub fn new() -> Retrowrite {
        Retrowrite {
            inner: janitizer_jasan::Jasan::hybrid(),
        }
    }
}

impl Default for Retrowrite {
    fn default() -> Retrowrite {
        Retrowrite::new()
    }
}

impl SecurityPlugin for Retrowrite {
    fn name(&self) -> &str {
        "retrowrite"
    }

    fn cache_key(&self) -> String {
        // The static pass is exactly JASan's, so share its cache slot.
        self.inner.cache_key()
    }

    fn static_pass(&self, image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
        self.inner.static_pass(image, ctx)
    }

    fn on_start(&mut self, proc: &mut Process) {
        self.inner.on_start(proc);
    }

    fn on_module_load(
        &mut self,
        proc: &mut Process,
        module_id: usize,
        rules: Option<&janitizer_rules::RuleTable>,
    ) {
        self.inner.on_module_load(proc, module_id, rules);
    }

    fn instrument_static(
        &mut self,
        proc: &mut Process,
        block: &DecodedBlock,
        rules: &janitizer_core::BlockRules<'_>,
    ) -> Vec<TbItem> {
        self.inner.instrument_static(proc, block, rules)
    }

    fn instrument_dynamic(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        // The defining gap: statically-unseen code is left untouched.
        block
            .insns
            .iter()
            .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
            .collect()
    }
}

// ---------------------------------------------------------------------
// CFI baselines (BinCFI, Lockdown)
// ---------------------------------------------------------------------

/// Forward-edge policy of a CFI baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CfiPolicy {
    /// BinCFI: targets are any scanned constant at an instruction
    /// boundary; returns go to any call-preceded address; no shadow stack.
    BinCfi,
    /// Lockdown, strong: inter-module calls must target a symbol both
    /// exported by the callee module and imported by the caller module.
    LockdownStrong,
    /// Lockdown, weak: inter-module calls may target any exported symbol.
    LockdownWeak,
}

/// Shared state of a CFI baseline.
#[derive(Debug, Default)]
pub struct BaselineCfiState {
    infos: Vec<Option<CfiModuleInfo>>,
    /// Per-module set of imported-function addresses (resolved), for
    /// Lockdown's strong policy.
    imported: Vec<BTreeSet<u64>>,
    /// Shadow stack (Lockdown only).
    shadow: Vec<u64>,
    /// Executed indirect-CTI sites (for dynamic AIR). Ordered so the
    /// floating-point AIR mean accumulates in a deterministic order.
    pub sites: BTreeMap<u64, SiteStat>,
}

impl BaselineCfiState {
    /// Total executable bytes loaded.
    pub fn total_code_bytes(&self) -> u64 {
        self.infos
            .iter()
            .flatten()
            .map(|i| i.code_bytes)
            .sum::<u64>()
            .max(1)
    }

    /// Dynamic AIR over executed sites, in percent.
    pub fn dynamic_air(&self) -> f64 {
        let s = self.total_code_bytes() as f64;
        if self.sites.is_empty() {
            return 100.0;
        }
        let sum: f64 = self
            .sites
            .values()
            .map(|site| 1.0 - (site.allowed as f64 / s).min(1.0))
            .sum();
        sum / self.sites.len() as f64 * 100.0
    }
}

/// A CFI baseline plugin (BinCFI or Lockdown, selected by policy).
#[derive(Debug)]
pub struct CfiBaseline {
    /// Selected policy.
    pub policy: CfiPolicy,
    /// Shared state (exposed for AIR extraction).
    pub state: Rc<RefCell<BaselineCfiState>>,
    static_info: RefCell<HashMap<String, CfiModuleInfo>>,
}

impl CfiBaseline {
    /// Creates a baseline with the given policy.
    pub fn new(policy: CfiPolicy) -> CfiBaseline {
        CfiBaseline {
            policy,
            state: Rc::new(RefCell::new(BaselineCfiState::default())),
            static_info: RefCell::new(HashMap::new()),
        }
    }

    fn has_shadow_stack(&self) -> bool {
        matches!(self.policy, CfiPolicy::LockdownStrong | CfiPolicy::LockdownWeak)
    }

    /// Profiler identity of one baseline check site. These baselines are
    /// dynamic-only rewriters, so every site is [`SiteOrigin::Dynamic`];
    /// Lockdown instruments inline while BinCFI's trampolines behave
    /// like clean calls.
    fn site(&self, kind: &'static str, pc: u64) -> ProbeSite {
        ProbeSite {
            tool: match self.policy {
                CfiPolicy::BinCfi => "bincfi",
                CfiPolicy::LockdownStrong => "lockdown-strong",
                CfiPolicy::LockdownWeak => "lockdown-weak",
            },
            kind,
            pc,
            class: match self.policy {
                CfiPolicy::BinCfi => ProbeClass::CleanCall,
                _ => ProbeClass::Inline,
            },
            origin: SiteOrigin::Dynamic,
        }
    }

    fn forward_probe(&self, pc: u64, reg: janitizer_isa::Reg, kind: CtiKind) -> TbItem {
        let state = Rc::clone(&self.state);
        let policy = self.policy;
        TbItem::Probe(Probe {
            cost: match policy {
                // BinCFI routes transfers through address-translation
                // trampolines.
                CfiPolicy::BinCfi => 18,
                _ => 11,
            },
            run: Box::new(move |p: &mut Process| {
                let target = p.cpu.reg(reg);
                let caller_mid = p.module_containing(pc).map(|m| m.id);
                let target_mid = p.module_containing(target).map(|m| m.id);
                let mut st = state.borrow_mut();
                let (ok, allowed_count) = match policy {
                    CfiPolicy::BinCfi => {
                        // Any scanned boundary constant anywhere, plus the
                        // dynamic-linking special cases BinCFI hard-codes
                        // (PLT stubs and exported symbols).
                        let ok = target_mid
                            .and_then(|id| st.infos.get(id).and_then(|i| i.as_ref()))
                            .map(|i| {
                                i.scanned_boundary_ptrs.contains(&target)
                                    || i.plt_stubs.contains(&target)
                                    || i.exported.contains(&target)
                            })
                            .unwrap_or(p.mem.region_label(target) == Some("jit"));
                        let count: u64 = st
                            .infos
                            .iter()
                            .flatten()
                            .map(|i| {
                                (i.scanned_boundary_ptrs.len()
                                    + i.plt_stubs.len()
                                    + i.exported.len()) as u64
                            })
                            .sum();
                        (ok, count.max(1))
                    }
                    CfiPolicy::LockdownStrong | CfiPolicy::LockdownWeak => {
                        let weak = policy == CfiPolicy::LockdownWeak;
                        let intra = caller_mid.is_some() && caller_mid == target_mid;
                        let info = target_mid.and_then(|id| st.infos.get(id).and_then(|i| i.as_ref()));
                        let ok = match info {
                            None => p.mem.region_label(target) == Some("jit"),
                            Some(i) => {
                                if intra {
                                    i.functions.contains(&target)
                                        || i.plt_stubs.contains(&target)
                                } else if weak {
                                    i.exported.contains(&target)
                                        || i.functions.contains(&target)
                                } else {
                                    // Strong: exported by callee AND
                                    // imported by caller. Stack-passed
                                    // callbacks fail here (§6.2.2).
                                    // Lockdown ships its own secure
                                    // loader, so resolver machinery is
                                    // always legal.
                                    let is_loader = p
                                        .module_containing(target)
                                        .map(|m| m.image.name == "ld.so")
                                        .unwrap_or(false);
                                    is_loader
                                        || (i.exported.contains(&target)
                                            && caller_mid
                                                .and_then(|id| st.imported.get(id))
                                                .map(|s| s.contains(&target))
                                                .unwrap_or(false))
                                }
                            }
                        };
                        let count: u64 = st
                            .infos
                            .iter()
                            .enumerate()
                            .map(|(id, i)| {
                                let Some(i) = i.as_ref() else { return 0 };
                                if Some(id) == caller_mid {
                                    i.functions.len() as u64 + i.plt_stubs.len() as u64
                                } else if weak {
                                    (i.exported.len() + i.functions.len()) as u64
                                } else {
                                    caller_mid
                                        .and_then(|c| st.imported.get(c))
                                        .map(|s| s.len() as u64)
                                        .unwrap_or(0)
                                }
                            })
                            .sum();
                        (ok, count.max(1))
                    }
                };
                st.sites.insert(
                    pc,
                    SiteStat {
                        kind,
                        allowed: allowed_count,
                    },
                );
                if ok {
                    ProbeResult::Ok
                } else {
                    ProbeResult::Violation(Report {
                        pc,
                        kind: ViolationKind::CfiIcall,
                        details: format!("indirect transfer to {target:#x} denied by policy"),
                    })
                }
            }),
            site: Some(self.site("forward-check", pc)),
        })
    }

    fn ijmp_probe(&self, pc: u64, reg: janitizer_isa::Reg) -> TbItem {
        // Lockdown: any byte within the closest-symbol function.
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost: 9,
            run: Box::new(move |p: &mut Process| {
                let target = p.cpu.reg(reg);
                let mut st = state.borrow_mut();
                let info = p
                    .module_containing(pc)
                    .map(|m| m.id)
                    .and_then(|id| st.infos.get(id).and_then(|i| i.as_ref()));
                let (ok, count) = match info {
                    None => (true, 1),
                    Some(i) => {
                        let range = i.function_range_of(pc);
                        let ok = range
                            .map(|(lo, hi)| target >= lo && target < hi)
                            .unwrap_or(true)
                            || i.functions.contains(&target);
                        let count = range.map(|(lo, hi)| hi - lo).unwrap_or(1)
                            + i.functions.len() as u64;
                        (ok, count)
                    }
                };
                st.sites.insert(
                    pc,
                    SiteStat {
                        kind: CtiKind::Jump,
                        allowed: count,
                    },
                );
                if ok {
                    ProbeResult::Ok
                } else {
                    ProbeResult::Violation(Report {
                        pc,
                        kind: ViolationKind::CfiIjmp,
                        details: format!("indirect jump to {target:#x} outside function"),
                    })
                }
            }),
            site: Some(self.site("ijmp-check", pc)),
        })
    }

    fn ret_probe(&self, pc: u64) -> TbItem {
        let state = Rc::clone(&self.state);
        let policy = self.policy;
        TbItem::Probe(Probe {
            cost: match policy {
                // Returns pay BinCFI's hash lookup + trampoline.
                CfiPolicy::BinCfi => 30,
                _ => 5,
            },
            run: Box::new(move |p: &mut Process| {
                let target = match p.mem.read_int(p.cpu.reg(janitizer_isa::Reg::R15), 8) {
                    Ok(t) => t,
                    Err(_) => return ProbeResult::Ok,
                };
                let mut st = state.borrow_mut();
                match policy {
                    CfiPolicy::BinCfi => {
                        // Any call-preceded address in any module.
                        let ok = st
                            .infos
                            .iter()
                            .flatten()
                            .any(|i| i.call_preceded.contains(&target))
                            || p.module_containing(target).is_none();
                        let count: u64 = st
                            .infos
                            .iter()
                            .flatten()
                            .map(|i| i.call_preceded.len() as u64)
                            .sum();
                        st.sites.insert(
                            pc,
                            SiteStat {
                                kind: CtiKind::Ret,
                                allowed: count.max(1),
                            },
                        );
                        if ok {
                            ProbeResult::Ok
                        } else {
                            ProbeResult::Violation(Report {
                                pc,
                                kind: ViolationKind::CfiReturn,
                                details: format!("return to non-call-preceded {target:#x}"),
                            })
                        }
                    }
                    _ => {
                        st.sites.insert(
                            pc,
                            SiteStat {
                                kind: CtiKind::Ret,
                                allowed: 1,
                            },
                        );
                        match st.shadow.pop() {
                            None => ProbeResult::Ok,
                            Some(e) if e == target => ProbeResult::Ok,
                            Some(e) => ProbeResult::Violation(Report {
                                pc,
                                kind: ViolationKind::CfiReturn,
                                details: format!("return to {target:#x}, expected {e:#x}"),
                            }),
                        }
                    }
                }
            }),
            site: Some(self.site("ret-check", pc)),
        })
    }

    fn push_probe(&self, pc: u64, ret_addr: u64) -> TbItem {
        let state = Rc::clone(&self.state);
        TbItem::Probe(Probe {
            cost: 4,
            run: Box::new(move |_p| {
                state.borrow_mut().shadow.push(ret_addr);
                ProbeResult::Ok
            }),
            site: Some(self.site("shadow-push", pc)),
        })
    }

    fn instrument_common(&mut self, block: &DecodedBlock, info: Option<&CfiModuleInfo>) -> Vec<TbItem> {
        let mut items = Vec::new();
        for &(pc, insn, next) in &block.insns {
            match insn {
                Instr::Call { .. } | Instr::CallInd { .. } if self.has_shadow_stack() => {
                    items.push(self.push_probe(pc, next));
                }
                _ => {}
            }
            match insn {
                Instr::CallInd { rs } => items.push(self.forward_probe(pc, rs, CtiKind::Call)),
                Instr::JmpInd { rs } => {
                    let in_plt = info
                        .and_then(|i| i.plt_range)
                        .map(|(lo, hi)| pc >= lo && pc < hi)
                        .unwrap_or(false);
                    if self.policy == CfiPolicy::BinCfi || in_plt {
                        items.push(self.forward_probe(pc, rs, CtiKind::Jump));
                    } else {
                        items.push(self.ijmp_probe(pc, rs));
                    }
                }
                Instr::Ret => {
                    // Resolver rets: Lockdown ships a custom secure loader
                    // and BinCFI patches ld.so outright (paper 4.2.3), so
                    // both exempt the resolver idiom; we model the same.
                    let is_resolver = info
                        .map(|i| i.resolver_rets.contains(&pc))
                        .unwrap_or(false);
                    if !is_resolver {
                        items.push(self.ret_probe(pc));
                    }
                }
                _ => {}
            }
            items.push(TbItem::Guest(pc, insn, next));
        }
        items
    }
}

impl SecurityPlugin for CfiBaseline {
    fn name(&self) -> &str {
        match self.policy {
            CfiPolicy::BinCfi => "bincfi",
            CfiPolicy::LockdownStrong => "lockdown-strong",
            CfiPolicy::LockdownWeak => "lockdown-weak",
        }
    }

    fn static_pass(&self, image: &Image, ctx: &StaticContext) -> Vec<RewriteRule> {
        // Baselines are driven entirely by module metadata; the only use
        // of the static pass is to precompute and stash it (BinCFI's
        // offline phase / Lockdown computes it at load).
        self.static_info
            .borrow_mut()
            .insert(image.name.clone(), CfiModuleInfo::from_image(image, Some(&ctx.cfg)));
        Vec::new()
    }

    fn on_rules_cached(&self, image: &Image, ctx: &StaticContext) {
        // Replay the `static_pass` stash on cache hits so cached runs see
        // the same precomputed module metadata as fresh ones.
        self.static_info
            .borrow_mut()
            .insert(image.name.clone(), CfiModuleInfo::from_image(image, Some(&ctx.cfg)));
    }

    fn on_module_load(
        &mut self,
        proc: &mut Process,
        module_id: usize,
        _rules: Option<&janitizer_rules::RuleTable>,
    ) {
        let m = &proc.modules[module_id];
        let base_info = self
            .static_info
            .borrow()
            .get(&m.image.name)
            .cloned()
            .unwrap_or_else(|| CfiModuleInfo::from_image(&m.image, None));
        let rebased = base_info.rebase(m.base);
        // Lockdown strong: resolve the module's imports to addresses.
        let imported: BTreeSet<u64> = m
            .image
            .imported_functions()
            .filter_map(|name| proc.resolve_symbol(name))
            .collect();
        let mut st = self.state.borrow_mut();
        while st.infos.len() <= module_id {
            st.infos.push(None);
            st.imported.push(BTreeSet::new());
        }
        st.infos[module_id] = Some(rebased);
        st.imported[module_id] = imported;
    }

    fn instrument_static(
        &mut self,
        proc: &mut Process,
        block: &DecodedBlock,
        _rules: &janitizer_core::BlockRules<'_>,
    ) -> Vec<TbItem> {
        self.instrument_dynamic(proc, block)
    }

    fn instrument_dynamic(&mut self, proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        let info = {
            let st = self.state.borrow();
            proc.module_containing(block.start)
                .map(|m| m.id)
                .and_then(|id| st.infos.get(id).and_then(|i| i.clone()))
        };
        self.instrument_common(block, info.as_ref())
    }
}

/// BinCFI's static AIR (Figure 13 methodology): forward targets are the
/// scanned boundary constants, returns the call-preceded set.
pub fn bincfi_static_air(images: &[&Image]) -> f64 {
    let infos: Vec<CfiModuleInfo> = images
        .iter()
        .map(|i| CfiModuleInfo::from_image(i, None))
        .collect();
    let s: u64 = infos.iter().map(|i| i.code_bytes).sum::<u64>().max(1);
    let fwd: u64 = infos
        .iter()
        .map(|i| i.scanned_boundary_ptrs.len() as u64)
        .sum();
    let rets: u64 = infos.iter().map(|i| i.call_preceded.len() as u64).sum();
    let mut terms = Vec::new();
    for image in images {
        let cfg = janitizer_analysis::analyze_module(image);
        for block in cfg.blocks.values() {
            for (_, insn) in &block.insns {
                let t = match insn {
                    Instr::CallInd { .. } | Instr::JmpInd { .. } => fwd.max(1),
                    Instr::Ret => rets.max(1),
                    _ => continue,
                };
                terms.push(1.0 - (t as f64 / s as f64).min(1.0));
            }
        }
    }
    if terms.is_empty() {
        100.0
    } else {
        terms.iter().sum::<f64>() / terms.len() as f64 * 100.0
    }
}
