//! Baseline comparator tests: each baseline's characteristic strengths
//! and weaknesses versus the Janitizer tools.

use janitizer_asm::{assemble, AsmOptions};
use janitizer_baselines::*;
use janitizer_core::{run_hybrid, run_native, HybridOptions, RunOutcome};
use janitizer_jasan::Jasan;
use janitizer_jcfi::Jcfi;
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CompileOptions};
use janitizer_vm::{LoadOptions, ModuleStore, MINIMAL_LD_SO};

fn build_ld_so() -> janitizer_obj::Image {
    let o = assemble("ld.s", MINIMAL_LD_SO, &AsmOptions { pic: true }).unwrap();
    link(&[o], &LinkOptions::shared_object("ld.so")).unwrap()
}

fn c_store(src: &str, copts: &CompileOptions, pie: bool) -> ModuleStore {
    let asm = compile(src, copts).unwrap();
    let obj = assemble("prog.s", &asm, &AsmOptions { pic: pie }).unwrap();
    let opts = if pie {
        LinkOptions::pie("prog")
    } else {
        LinkOptions::executable("prog")
    };
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &opts).unwrap());
    store.add(build_ld_so());
    store.add(janitizer_jasan::runtime_module());
    store.add(memcheck_runtime());
    store
}

fn emit_start() -> CompileOptions {
    CompileOptions {
        emit_start: true,
        ..CompileOptions::default()
    }
}

fn memcheck_opts() -> HybridOptions {
    HybridOptions {
        dynamic_only: true,
        load: LoadOptions {
            preload: vec![MEMCHECK_RT.into()],
            ..LoadOptions::default()
        },
        engine: janitizer_core::EngineOptions {
            costs: memcheck_costs(),
            ..Default::default()
        },
        ..HybridOptions::default()
    }
}

fn jasan_opts() -> HybridOptions {
    HybridOptions {
        load: LoadOptions {
            preload: vec![janitizer_jasan::RT_MODULE.into()],
            ..LoadOptions::default()
        },
        ..HybridOptions::default()
    }
}

#[test]
fn memcheck_detects_wide_heap_overflow() {
    let src = "long main() { long p = malloc(16); return *(p + 16); }";
    let store = c_store(src, &emit_start(), false);
    let run = run_hybrid(&store, "prog", Memcheck::new(), &memcheck_opts()).unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "heap-buffer-overflow"),
        "{:?}",
        run.outcome
    );
}

#[test]
fn memcheck_misses_overflow_beyond_its_redzone() {
    // Offset +40 past a 16-byte object: with Memcheck's 16-byte redzones
    // the access lands in the *valid data* of the next allocation (a
    // missed overflow); JASan's 32-byte redzones still cover it.
    let src = "long main() {\
                 long p = malloc(16);\
                 long q = malloc(16);\
                 char *c = p;\
                 c[56] = 1;\
                 return q != 0;\
               }";
    let store = c_store(src, &emit_start(), false);
    let mc = run_hybrid(&store, "prog", Memcheck::new(), &memcheck_opts()).unwrap();
    assert!(
        matches!(mc.outcome, RunOutcome::Exited(_)),
        "memcheck misses: {:?}",
        mc.outcome
    );
    let ja = run_hybrid(&store, "prog", Jasan::hybrid(), &jasan_opts()).unwrap();
    assert!(
        matches!(&ja.outcome, RunOutcome::Violation(_)),
        "jasan catches: {:?}",
        ja.outcome
    );
}

#[test]
fn memcheck_misses_heap_to_stack_overflow() {
    // A heap pointer walking onto the stack: Valgrind does not track
    // stack addressability.
    let src = "long smash(long *p, long d) { p[d] = 7; return 0; }\
               long main() { long x = 1; long p = malloc(8); smash(p, 0); return x; }";
    // Direct heap-to-stack reach is hard to construct portably; instead,
    // write *to a stack address through an attacker-controlled pointer*.
    let src2 = "long main() {\
                  long x = 5;\
                  long p = &x;\
                  *(p + 0) = 9;\
                  return x;\
                }";
    let _ = src;
    let store = c_store(src2, &emit_start(), false);
    let run = run_hybrid(&store, "prog", Memcheck::new(), &memcheck_opts()).unwrap();
    assert_eq!(run.outcome.code(), Some(9), "stack accesses are never flagged");
}

#[test]
fn memcheck_is_much_slower_than_jasan() {
    let src = "long main() {\
                 long p = malloc(400);\
                 long s = 0;\
                 for (long r = 0; r < 30; r++)\
                   for (long i = 0; i < 50; i++) { *(p + i * 8) = i; s += *(p + i * 8); }\
                 return s % 100;\
               }";
    let store = c_store(src, &emit_start(), false);
    let (_, nproc) = run_native(&store, "prog", &LoadOptions::default(), 0).unwrap();
    let mc = run_hybrid(&store, "prog", Memcheck::new(), &memcheck_opts()).unwrap();
    let ja = run_hybrid(&store, "prog", Jasan::hybrid(), &jasan_opts()).unwrap();
    assert_eq!(mc.outcome.code(), ja.outcome.code());
    let mc_slow = mc.cycles as f64 / nproc.cycles as f64;
    let ja_slow = ja.cycles as f64 / nproc.cycles as f64;
    assert!(
        mc_slow > 2.0 * ja_slow,
        "memcheck {mc_slow:.2}x vs jasan {ja_slow:.2}x"
    );
}

#[test]
fn retrowrite_requires_pic() {
    let src = "long main() { return 1; }";
    let nonpic = c_store(src, &emit_start(), false);
    let img = nonpic.get("prog").unwrap();
    assert!(matches!(
        retrowrite_applicable(&[&img]),
        Err(RetrowriteError::NotPic(_))
    ));
    let pic = c_store(src, &emit_start(), true);
    let img = pic.get("prog").unwrap();
    assert!(retrowrite_applicable(&[&img]).is_ok());
}

#[test]
fn retrowrite_rejects_data_in_text() {
    let copts = CompileOptions {
        emit_start: true,
        tables_in_text: true,
        ..CompileOptions::default()
    };
    let src = "long f(long x) { switch (x) {\
                 case 0: return 5; case 1: return 6; case 2: return 7;\
                 case 3: return 8; case 4: return 9; default: return 1; } }\
               long main() { return f(3); }";
    let store = c_store(src, &copts, true);
    let img = store.get("prog").unwrap();
    assert!(matches!(
        retrowrite_applicable(&[&img]),
        Err(RetrowriteError::ReassemblyUnsound(_))
    ));
    assert!(!reassembly_sound(&img));
}

#[test]
fn retrowrite_fast_but_blind_to_jit_code() {
    // JIT code writes through a pointer; RetroWrite's static rewriting
    // never sees it, so a JIT-resident overflow goes undetected, while
    // JASan's dynamic fallback catches it.
    let src = ".section text\n.global _start\n_start:\n\
         mov r0, 3\n mov r1, 4096\n mov r2, 1\n syscall\n\
         mov r8, r0\n\
         ; generated code: st8 [r1], r2 ; ret   (r1 points into redzone)\n\
         mov r9, 0x27\n st1 [r8], r9\n\
         mov r9, 0x21\n st1 [r8+1], r9\n\
         mov r9, 0\n st4 [r8+2], r9\n\
         mov r9, 0x6c\n st1 [r8+6], r9\n\
         ; allocate and aim one past the object\n\
         mov r0, 16\n call malloc\n add r0, 16\n mov r1, r0\n\
         call r8\n mov r0, 0\n ret\n";
    let obj = assemble("jit.s", src, &AsmOptions { pic: true }).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::pie("prog").needs(janitizer_jasan::RT_MODULE)).unwrap());
    store.add(build_ld_so());
    store.add(janitizer_jasan::runtime_module());

    let rw_opts = HybridOptions {
        load: LoadOptions::default(),
        engine: janitizer_core::EngineOptions {
            costs: static_rewriter_costs(),
            ..Default::default()
        },
        ..HybridOptions::default()
    };
    let rw = run_hybrid(&store, "prog", Retrowrite::new(), &rw_opts).unwrap();
    assert_eq!(rw.outcome.code(), Some(0), "retrowrite misses the JIT overflow: {:?}", rw.outcome);

    let ja = run_hybrid(&store, "prog", Jasan::hybrid(), &HybridOptions::default()).unwrap();
    assert!(
        matches!(&ja.outcome, RunOutcome::Violation(_)),
        "jasan's fallback catches it: {:?}",
        ja.outcome
    );
}

#[test]
fn bincfi_allows_return_to_any_call_site() {
    // Smash the return address to point at *another* call-preceded
    // address: BinCFI passes, JCFI's shadow stack rejects.
    let src = ".section text\n.global _start\n_start:\n\
               call victim\n mov r0, 1\n ret\n\
               other:\n call victim2\n mov r0, 33\n ret\n\
               victim:\n la r8, other\n add r8, 5\n st8 [sp], r8\n nop\n ret\n\
               victim2:\n ret\n";
    let obj = assemble("t.s", src, &AsmOptions::default()).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::executable("prog")).unwrap());

    let bincfi_opts = HybridOptions {
        engine: janitizer_core::EngineOptions {
            costs: static_rewriter_costs(),
            ..Default::default()
        },
        ..HybridOptions::default()
    };
    let bc = run_hybrid(&store, "prog", CfiBaseline::new(CfiPolicy::BinCfi), &bincfi_opts).unwrap();
    assert_eq!(
        bc.outcome.code(),
        Some(33),
        "bincfi's weak return policy admits the diversion: {:?}",
        bc.outcome
    );
    let jc = run_hybrid(&store, "prog", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert!(
        matches!(&jc.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "cfi-return-violation"),
        "{:?}",
        jc.outcome
    );
}

#[test]
fn lockdown_strong_false_positive_on_stack_callback() {
    // The qsort-comparator pattern: a non-exported function pointer
    // passed cross-module. Lockdown (S) flags it; Lockdown (W) and JCFI
    // accept.
    let lib = {
        let o = assemble(
            "lib.s",
            ".section text\n.global apply\napply:\n mov r7, r0\n mov r0, r1\n call r7\n ret\n",
            &AsmOptions { pic: true },
        )
        .unwrap();
        link(&[o], &LinkOptions::shared_object("libapply.so")).unwrap()
    };
    let exe_src = "static long local_cb(long x) { return x * 3; }\
                   long cbtab[] = {&local_cb};\
                   long main() { long f = cbtab[0]; return apply(f, 7); }";
    let exe = {
        let asm = compile(exe_src, &emit_start()).unwrap();
        let o = assemble("e.s", &asm, &AsmOptions::default()).unwrap();
        link(&[o], &LinkOptions::executable("prog").needs("libapply.so")).unwrap()
    };
    let mut store = ModuleStore::new();
    store.add(exe);
    store.add(lib);
    store.add(build_ld_so());

    let ld_opts = HybridOptions {
        dynamic_only: true,
        engine: janitizer_core::EngineOptions {
            costs: lockdown_costs(),
            ..Default::default()
        },
        ..HybridOptions::default()
    };
    let strong = run_hybrid(
        &store,
        "prog",
        CfiBaseline::new(CfiPolicy::LockdownStrong),
        &ld_opts,
    )
    .unwrap();
    assert!(
        matches!(&strong.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "cfi-icall-violation"),
        "Lockdown (S) false positive expected: {:?}",
        strong.outcome
    );
    let weak = run_hybrid(
        &store,
        "prog",
        CfiBaseline::new(CfiPolicy::LockdownWeak),
        &ld_opts,
    )
    .unwrap();
    assert_eq!(weak.outcome.code(), Some(21), "{:?}", weak.outcome);
    let jcfi = run_hybrid(&store, "prog", Jcfi::hybrid(), &HybridOptions::default()).unwrap();
    assert_eq!(jcfi.outcome.code(), Some(21), "{:?}", jcfi.outcome);
}

#[test]
fn lockdown_shadow_stack_catches_return_smash() {
    let src = ".section text\n.global _start\n_start:\n\
               call victim\n mov r0, 1\n ret\n\
               victim:\n la r8, evil\n st8 [sp], r8\n nop\n ret\n\
               evil:\n mov r0, 66\n ret\n";
    let obj = assemble("t.s", src, &AsmOptions::default()).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::executable("prog")).unwrap());
    let ld_opts = HybridOptions {
        dynamic_only: true,
        engine: janitizer_core::EngineOptions {
            costs: lockdown_costs(),
            ..Default::default()
        },
        ..HybridOptions::default()
    };
    let run = run_hybrid(
        &store,
        "prog",
        CfiBaseline::new(CfiPolicy::LockdownStrong),
        &ld_opts,
    )
    .unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(r) if r.kind.as_str() == "cfi-return-violation"),
        "{:?}",
        run.outcome
    );
}

#[test]
fn air_ordering_jcfi_above_bincfi() {
    // A program of realistic shape: many functions and call sites, so
    // BinCFI's any-call-preceded return policy leaves a large target set
    // while JCFI's shadow stack leaves one.
    let mut src = String::from(
        "long inc(long x) { return x + 1; }\
         long ops[] = {&inc};\
         long f(long x) { switch (x) { case 0: return 1; case 1: return 2; case 2: return 3; case 3: return 4; case 4: return 5; default: return 0; } }",
    );
    for i in 0..25 {
        src.push_str(&format!(
            "long w{i}(long x) {{ return f(x) + inc(x) + f(x + 1) + inc(x + 2); }}"
        ));
    }
    let mut main_body = String::from("long main() { long g = ops[0]; long s = 0;");
    for i in 0..25 {
        main_body.push_str(&format!("s += w{i}(s % 5);"));
    }
    main_body.push_str("return g(s % 50); }");
    src.push_str(&main_body);
    let store = c_store(&src, &emit_start(), false);
    let image = store.get("prog").unwrap();
    let jcfi_air = janitizer_jcfi::static_air(&[&image]);
    let bincfi_air = bincfi_static_air(&[&image]);
    assert!(
        jcfi_air > bincfi_air,
        "jcfi {jcfi_air:.2} vs bincfi {bincfi_air:.2}"
    );
}

#[test]
fn bincfi_rejects_wild_forward_target() {
    let src = ".section text\n.global _start\n_start:\n\
               la r8, _start\n add r8, 3\n call r8\n ret\n";
    let obj = assemble("t.s", src, &AsmOptions::default()).unwrap();
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::executable("prog")).unwrap());
    let opts = HybridOptions {
        engine: janitizer_core::EngineOptions {
            costs: static_rewriter_costs(),
            ..Default::default()
        },
        ..HybridOptions::default()
    };
    let run = run_hybrid(&store, "prog", CfiBaseline::new(CfiPolicy::BinCfi), &opts).unwrap();
    assert!(
        matches!(&run.outcome, RunOutcome::Violation(_)),
        "not a scanned constant: {:?}",
        run.outcome
    );
}
