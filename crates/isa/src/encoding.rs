//! Variable-length binary encoding of JX-64 instructions.
//!
//! The format is byte-oriented and little-endian: one opcode byte followed
//! by zero or more operand bytes. Register pairs pack into a single byte
//! (`hi << 4 | lo`); immediates and displacements are 4 or 8 bytes.
//! Instruction lengths range from 1 to [`MAX_INSTR_LEN`] bytes, which makes
//! instruction-boundary recovery a genuine static-analysis problem, as it
//! is on x86.

use crate::insn::{AluOp, Cc, Instr, MemSize};
use crate::reg::Reg;
use std::fmt;

/// Longest possible instruction encoding (the `mov rd, imm64` form).
pub const MAX_INSTR_LEN: usize = 10;

// Opcode space layout. Gaps are reserved/undefined and decode errors.
const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_TRAP: u8 = 0x02;
const OP_MOV_RR: u8 = 0x10;
const OP_MOV_I64: u8 = 0x11;
const OP_MOV_I32: u8 = 0x12;
const OP_LEA_PC: u8 = 0x13;
const OP_LEA: u8 = 0x14;
const OP_LD_BASE: u8 = 0x20; // +log2(size)
const OP_ST_BASE: u8 = 0x24;
const OP_LDX_BASE: u8 = 0x28;
const OP_STX_BASE: u8 = 0x2c;
const OP_ALU_RR_BASE: u8 = 0x30; // +AluOp
const OP_ALU_RI_BASE: u8 = 0x40;
const OP_NEG: u8 = 0x50;
const OP_NOT: u8 = 0x51;
const OP_PUSH: u8 = 0x58;
const OP_POP: u8 = 0x59;
const OP_PUSHF: u8 = 0x5a;
const OP_POPF: u8 = 0x5b;
const OP_JMP: u8 = 0x60;
const OP_JCC_BASE: u8 = 0x61; // +Cc, 0x61..=0x68
const OP_CALL: u8 = 0x69;
const OP_CALL_IND: u8 = 0x6a;
const OP_JMP_IND: u8 = 0x6b;
const OP_RET: u8 = 0x6c;
const OP_SYSCALL: u8 = 0x6d;
const OP_RDTLS: u8 = 0x70;
const OP_WRTLS: u8 = 0x71;

/// Error produced by [`decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The byte at `offset` is not a defined opcode.
    UnknownOpcode {
        /// The offending byte.
        opcode: u8,
        /// Offset within the decoded buffer.
        offset: usize,
    },
    /// The instruction starting at `offset` runs past the end of the buffer.
    Truncated {
        /// Offset within the decoded buffer.
        offset: usize,
    },
    /// An indexed memory operand at `offset` has a scale larger than 8.
    BadScale {
        /// Offset within the decoded buffer.
        offset: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::UnknownOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {offset:#x}")
            }
            DecodeError::Truncated { offset } => {
                write!(f, "truncated instruction at offset {offset:#x}")
            }
            DecodeError::BadScale { offset } => {
                write!(f, "invalid index scale at offset {offset:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn reg_hi(b: u8) -> Reg {
    Reg::from_index((b >> 4) as usize)
}

#[inline]
fn reg_lo(b: u8) -> Reg {
    Reg::from_index((b & 0xf) as usize)
}

impl Instr {
    /// Appends this instruction's encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Instr::Nop => out.push(OP_NOP),
            Instr::Halt => out.push(OP_HALT),
            Instr::Trap => out.push(OP_TRAP),
            Instr::MovRr { rd, rs } => {
                out.push(OP_MOV_RR);
                out.push((rd.index() as u8) << 4 | rs.index() as u8);
            }
            Instr::MovI64 { rd, imm } => {
                out.push(OP_MOV_I64);
                out.push(rd.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::MovI32 { rd, imm } => {
                out.push(OP_MOV_I32);
                out.push(rd.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::LeaPc { rd, disp } => {
                out.push(OP_LEA_PC);
                out.push(rd.index() as u8);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::Lea { rd, base, disp } => {
                out.push(OP_LEA);
                out.push((rd.index() as u8) << 4 | base.index() as u8);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::Ld { size, rd, base, disp } => {
                out.push(OP_LD_BASE + size.log2());
                out.push((rd.index() as u8) << 4 | base.index() as u8);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::St { size, rs, base, disp } => {
                out.push(OP_ST_BASE + size.log2());
                out.push((rs.index() as u8) << 4 | base.index() as u8);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::LdIdx {
                size,
                rd,
                base,
                idx,
                scale,
                disp,
            } => {
                out.push(OP_LDX_BASE + size.log2());
                out.push((rd.index() as u8) << 4 | base.index() as u8);
                out.push((idx.index() as u8) << 4 | (scale & 0xf));
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::StIdx {
                size,
                rs,
                base,
                idx,
                scale,
                disp,
            } => {
                out.push(OP_STX_BASE + size.log2());
                out.push((rs.index() as u8) << 4 | base.index() as u8);
                out.push((idx.index() as u8) << 4 | (scale & 0xf));
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Instr::AluRr { op, rd, rs } => {
                out.push(OP_ALU_RR_BASE + op as u8);
                out.push((rd.index() as u8) << 4 | rs.index() as u8);
            }
            Instr::AluRi { op, rd, imm } => {
                out.push(OP_ALU_RI_BASE + op as u8);
                out.push(rd.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instr::Neg { rd } => {
                out.push(OP_NEG);
                out.push(rd.index() as u8);
            }
            Instr::Not { rd } => {
                out.push(OP_NOT);
                out.push(rd.index() as u8);
            }
            Instr::Push { rs } => {
                out.push(OP_PUSH);
                out.push(rs.index() as u8);
            }
            Instr::Pop { rd } => {
                out.push(OP_POP);
                out.push(rd.index() as u8);
            }
            Instr::PushF => out.push(OP_PUSHF),
            Instr::PopF => out.push(OP_POPF),
            Instr::Jmp { rel } => {
                out.push(OP_JMP);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Instr::Jcc { cc, rel } => {
                out.push(OP_JCC_BASE + cc as u8);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Instr::Call { rel } => {
                out.push(OP_CALL);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Instr::CallInd { rs } => {
                out.push(OP_CALL_IND);
                out.push(rs.index() as u8);
            }
            Instr::JmpInd { rs } => {
                out.push(OP_JMP_IND);
                out.push(rs.index() as u8);
            }
            Instr::Ret => out.push(OP_RET),
            Instr::Syscall => out.push(OP_SYSCALL),
            Instr::RdTls { rd, off } => {
                out.push(OP_RDTLS);
                out.push(rd.index() as u8);
                out.extend_from_slice(&off.to_le_bytes());
            }
            Instr::WrTls { rs, off } => {
                out.push(OP_WRTLS);
                out.push(rs.index() as u8);
                out.extend_from_slice(&off.to_le_bytes());
            }
        }
    }

    /// Length in bytes of this instruction's encoding.
    pub fn encoded_len(&self) -> usize {
        match self {
            Instr::Nop
            | Instr::Halt
            | Instr::Trap
            | Instr::PushF
            | Instr::PopF
            | Instr::Ret
            | Instr::Syscall => 1,
            Instr::MovRr { .. }
            | Instr::AluRr { .. }
            | Instr::Neg { .. }
            | Instr::Not { .. }
            | Instr::Push { .. }
            | Instr::Pop { .. }
            | Instr::CallInd { .. }
            | Instr::JmpInd { .. } => 2,
            Instr::Jmp { .. } | Instr::Jcc { .. } | Instr::Call { .. } => 5,
            Instr::MovI32 { .. }
            | Instr::LeaPc { .. }
            | Instr::Lea { .. }
            | Instr::Ld { .. }
            | Instr::St { .. }
            | Instr::AluRi { .. }
            | Instr::RdTls { .. }
            | Instr::WrTls { .. } => 6,
            Instr::LdIdx { .. } | Instr::StIdx { .. } => 7,
            Instr::MovI64 { .. } => 10,
        }
    }
}

/// Decodes the instruction starting at `offset` in `bytes`.
///
/// Returns the instruction and the offset of the *next* instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode byte is undefined, the operand
/// bytes run past the end of the buffer, or an index scale exceeds 8.
pub fn decode(bytes: &[u8], offset: usize) -> Result<(Instr, usize), DecodeError> {
    let trunc = DecodeError::Truncated { offset };
    let op = *bytes.get(offset).ok_or(trunc)?;

    let need = |n: usize| -> Result<&[u8], DecodeError> {
        bytes.get(offset + 1..offset + 1 + n).ok_or(trunc)
    };
    let i32_at = |b: &[u8], at: usize| i32::from_le_bytes(b[at..at + 4].try_into().unwrap());

    let (insn, operand_len) = match op {
        OP_NOP => (Instr::Nop, 0),
        OP_HALT => (Instr::Halt, 0),
        OP_TRAP => (Instr::Trap, 0),
        OP_MOV_RR => {
            let b = need(1)?;
            (
                Instr::MovRr {
                    rd: reg_hi(b[0]),
                    rs: reg_lo(b[0]),
                },
                1,
            )
        }
        OP_MOV_I64 => {
            let b = need(9)?;
            (
                Instr::MovI64 {
                    rd: reg_lo(b[0]),
                    imm: u64::from_le_bytes(b[1..9].try_into().unwrap()),
                },
                9,
            )
        }
        OP_MOV_I32 => {
            let b = need(5)?;
            (
                Instr::MovI32 {
                    rd: reg_lo(b[0]),
                    imm: i32_at(b, 1),
                },
                5,
            )
        }
        OP_LEA_PC => {
            let b = need(5)?;
            (
                Instr::LeaPc {
                    rd: reg_lo(b[0]),
                    disp: i32_at(b, 1),
                },
                5,
            )
        }
        OP_LEA => {
            let b = need(5)?;
            (
                Instr::Lea {
                    rd: reg_hi(b[0]),
                    base: reg_lo(b[0]),
                    disp: i32_at(b, 1),
                },
                5,
            )
        }
        _ if (OP_LD_BASE..OP_LD_BASE + 4).contains(&op) => {
            let b = need(5)?;
            (
                Instr::Ld {
                    size: MemSize::from_log2(op - OP_LD_BASE).unwrap(),
                    rd: reg_hi(b[0]),
                    base: reg_lo(b[0]),
                    disp: i32_at(b, 1),
                },
                5,
            )
        }
        _ if (OP_ST_BASE..OP_ST_BASE + 4).contains(&op) => {
            let b = need(5)?;
            (
                Instr::St {
                    size: MemSize::from_log2(op - OP_ST_BASE).unwrap(),
                    rs: reg_hi(b[0]),
                    base: reg_lo(b[0]),
                    disp: i32_at(b, 1),
                },
                5,
            )
        }
        _ if (OP_LDX_BASE..OP_LDX_BASE + 4).contains(&op) => {
            let b = need(6)?;
            let scale = b[1] & 0xf;
            if scale > 3 {
                return Err(DecodeError::BadScale { offset });
            }
            (
                Instr::LdIdx {
                    size: MemSize::from_log2(op - OP_LDX_BASE).unwrap(),
                    rd: reg_hi(b[0]),
                    base: reg_lo(b[0]),
                    idx: reg_hi(b[1]),
                    scale,
                    disp: i32_at(b, 2),
                },
                6,
            )
        }
        _ if (OP_STX_BASE..OP_STX_BASE + 4).contains(&op) => {
            let b = need(6)?;
            let scale = b[1] & 0xf;
            if scale > 3 {
                return Err(DecodeError::BadScale { offset });
            }
            (
                Instr::StIdx {
                    size: MemSize::from_log2(op - OP_STX_BASE).unwrap(),
                    rs: reg_hi(b[0]),
                    base: reg_lo(b[0]),
                    idx: reg_hi(b[1]),
                    scale,
                    disp: i32_at(b, 2),
                },
                6,
            )
        }
        _ if (OP_ALU_RR_BASE..OP_ALU_RR_BASE + 13).contains(&op) => {
            let b = need(1)?;
            (
                Instr::AluRr {
                    op: AluOp::from_u8(op - OP_ALU_RR_BASE).unwrap(),
                    rd: reg_hi(b[0]),
                    rs: reg_lo(b[0]),
                },
                1,
            )
        }
        _ if (OP_ALU_RI_BASE..OP_ALU_RI_BASE + 13).contains(&op) => {
            let b = need(5)?;
            (
                Instr::AluRi {
                    op: AluOp::from_u8(op - OP_ALU_RI_BASE).unwrap(),
                    rd: reg_lo(b[0]),
                    imm: i32_at(b, 1),
                },
                5,
            )
        }
        OP_NEG => {
            let b = need(1)?;
            (Instr::Neg { rd: reg_lo(b[0]) }, 1)
        }
        OP_NOT => {
            let b = need(1)?;
            (Instr::Not { rd: reg_lo(b[0]) }, 1)
        }
        OP_PUSH => {
            let b = need(1)?;
            (Instr::Push { rs: reg_lo(b[0]) }, 1)
        }
        OP_POP => {
            let b = need(1)?;
            (Instr::Pop { rd: reg_lo(b[0]) }, 1)
        }
        OP_PUSHF => (Instr::PushF, 0),
        OP_POPF => (Instr::PopF, 0),
        OP_JMP => {
            let b = need(4)?;
            (Instr::Jmp { rel: i32_at(b, 0) }, 4)
        }
        _ if (OP_JCC_BASE..OP_JCC_BASE + 8).contains(&op) => {
            let b = need(4)?;
            (
                Instr::Jcc {
                    cc: Cc::from_u8(op - OP_JCC_BASE).unwrap(),
                    rel: i32_at(b, 0),
                },
                4,
            )
        }
        OP_CALL => {
            let b = need(4)?;
            (Instr::Call { rel: i32_at(b, 0) }, 4)
        }
        OP_CALL_IND => {
            let b = need(1)?;
            (Instr::CallInd { rs: reg_lo(b[0]) }, 1)
        }
        OP_JMP_IND => {
            let b = need(1)?;
            (Instr::JmpInd { rs: reg_lo(b[0]) }, 1)
        }
        OP_RET => (Instr::Ret, 0),
        OP_SYSCALL => (Instr::Syscall, 0),
        OP_RDTLS => {
            let b = need(5)?;
            (
                Instr::RdTls {
                    rd: reg_lo(b[0]),
                    off: i32_at(b, 1),
                },
                5,
            )
        }
        OP_WRTLS => {
            let b = need(5)?;
            (
                Instr::WrTls {
                    rs: reg_lo(b[0]),
                    off: i32_at(b, 1),
                },
                5,
            )
        }
        opcode => return Err(DecodeError::UnknownOpcode { opcode, offset }),
    };
    Ok((insn, offset + 1 + operand_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let mut buf = Vec::new();
        i.encode(&mut buf);
        assert_eq!(buf.len(), i.encoded_len(), "length mismatch for {i}");
        let (decoded, next) = decode(&buf, 0).unwrap();
        assert_eq!(decoded, i);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn roundtrip_representatives() {
        let samples = [
            Instr::Nop,
            Instr::Halt,
            Instr::Trap,
            Instr::MovRr { rd: Reg::R3, rs: Reg::R12 },
            Instr::MovI64 {
                rd: Reg::R7,
                imm: 0xdead_beef_cafe_f00d,
            },
            Instr::MovI32 { rd: Reg::R0, imm: -1 },
            Instr::LeaPc { rd: Reg::R5, disp: -0x1000 },
            Instr::Lea {
                rd: Reg::R1,
                base: Reg::SP,
                disp: 24,
            },
            Instr::Ld {
                size: MemSize::B4,
                rd: Reg::R2,
                base: Reg::R9,
                disp: -8,
            },
            Instr::St {
                size: MemSize::B1,
                rs: Reg::R6,
                base: Reg::FP,
                disp: 0x7fff_0000,
            },
            Instr::LdIdx {
                size: MemSize::B8,
                rd: Reg::R4,
                base: Reg::R8,
                idx: Reg::R9,
                scale: 3,
                disp: 0x40,
            },
            Instr::StIdx {
                size: MemSize::B2,
                rs: Reg::R4,
                base: Reg::R8,
                idx: Reg::R9,
                scale: 1,
                disp: -4,
            },
            Instr::AluRr {
                op: AluOp::Xor,
                rd: Reg::R0,
                rs: Reg::R0,
            },
            Instr::AluRi {
                op: AluOp::Cmp,
                rd: Reg::R13,
                imm: 1000,
            },
            Instr::Neg { rd: Reg::R2 },
            Instr::Not { rd: Reg::R15 },
            Instr::Push { rs: Reg::FP },
            Instr::Pop { rd: Reg::FP },
            Instr::PushF,
            Instr::PopF,
            Instr::Jmp { rel: 0 },
            Instr::Jcc { cc: Cc::Ae, rel: -6 },
            Instr::Call { rel: 0x1234 },
            Instr::CallInd { rs: Reg::R11 },
            Instr::JmpInd { rs: Reg::R10 },
            Instr::Ret,
            Instr::Syscall,
            Instr::RdTls { rd: Reg::R6, off: 0x28 },
            Instr::WrTls { rs: Reg::R6, off: 0x100 },
        ];
        for s in samples {
            roundtrip(s);
        }
    }

    #[test]
    fn all_alu_ops_and_ccs() {
        for op in AluOp::ALL {
            roundtrip(Instr::AluRr { op, rd: Reg::R1, rs: Reg::R2 });
            roundtrip(Instr::AluRi { op, rd: Reg::R1, imm: 7 });
        }
        for cc in Cc::ALL {
            roundtrip(Instr::Jcc { cc, rel: 100 });
        }
        for size in [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8] {
            roundtrip(Instr::Ld {
                size,
                rd: Reg::R1,
                base: Reg::R2,
                disp: 4,
            });
            roundtrip(Instr::St {
                size,
                rs: Reg::R1,
                base: Reg::R2,
                disp: 4,
            });
        }
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        assert_eq!(
            decode(&[0xff], 0),
            Err(DecodeError::UnknownOpcode { opcode: 0xff, offset: 0 })
        );
        assert_eq!(
            decode(&[0x0f], 0),
            Err(DecodeError::UnknownOpcode { opcode: 0x0f, offset: 0 })
        );
    }

    #[test]
    fn truncated_operands_are_an_error() {
        // `mov rd, imm64` needs 9 operand bytes.
        assert_eq!(decode(&[0x11, 0x00, 0x01], 0), Err(DecodeError::Truncated { offset: 0 }));
        // Empty buffer.
        assert_eq!(decode(&[], 0), Err(DecodeError::Truncated { offset: 0 }));
    }

    #[test]
    fn bad_scale_is_an_error() {
        let mut buf = Vec::new();
        Instr::LdIdx {
            size: MemSize::B8,
            rd: Reg::R0,
            base: Reg::R1,
            idx: Reg::R2,
            scale: 0,
            disp: 0,
        }
        .encode(&mut buf);
        buf[2] = (buf[2] & 0xf0) | 0x07; // corrupt the scale nibble
        assert_eq!(decode(&buf, 0), Err(DecodeError::BadScale { offset: 0 }));
    }

    #[test]
    fn decode_mid_buffer_uses_absolute_offsets() {
        let mut buf = vec![0u8; 3];
        Instr::Ret.encode(&mut buf);
        let (i, next) = decode(&buf, 3).unwrap();
        assert_eq!(i, Instr::Ret);
        assert_eq!(next, 4);
    }
}
