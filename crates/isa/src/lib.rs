//! # JX-64: the Janitizer experimental instruction set
//!
//! A 64-bit, little-endian, variable-length-encoded instruction set that
//! stands in for x86-64 in this reproduction of the Janitizer paper
//! (CGO '25). The properties that matter for hybrid binary rewriting are
//! kept faithful to a CISC target:
//!
//! * **variable-length encoding** (1–10 bytes), so instruction boundaries
//!   are non-trivial and "scan the raw binary for code pointers at
//!   instruction boundaries" (BinCFI/JCFI §4.2.1) is a real analysis;
//! * **condition flags** set by ALU instructions, so the arithmetic-flag
//!   liveness analysis of §3.3.2 has something to preserve;
//! * **indirect calls and jumps, returns**, the control-transfer
//!   instructions CFI must police;
//! * **PC-relative addressing** ([`Instr::LeaPc`]) for position-independent
//!   code, plus absolute 64-bit immediates for non-PIC code;
//! * **TLS accesses** ([`Instr::RdTls`]/[`Instr::WrTls`]) used both for the
//!   stack-canary cookie (like x86's `%fs:0x28`) and as spill slots for
//!   inline instrumentation (like DynamoRIO's TLS scratch slots).
//!
//! The crate is purely about representation: [`Instr`] (the decoded form),
//! [`encode`](Instr::encode) / [`decode`], textual disassembly via
//! [`std::fmt::Display`], and static metadata (cycle [`cost`](Instr::cost),
//! flag effects, register uses/defs) consumed by the analyzers.
//!
//! ```
//! use janitizer_isa::{Instr, Reg, decode};
//!
//! # fn main() -> Result<(), janitizer_isa::DecodeError> {
//! let mut code = Vec::new();
//! Instr::MovI32 { rd: Reg::R0, imm: 42 }.encode(&mut code);
//! Instr::Ret.encode(&mut code);
//!
//! let (first, len) = decode(&code, 0)?;
//! assert_eq!(first, Instr::MovI32 { rd: Reg::R0, imm: 42 });
//! assert_eq!(decode(&code, len)?.0, Instr::Ret);
//! # Ok(())
//! # }
//! ```

mod encoding;
mod insn;
mod reg;

pub use encoding::{decode, DecodeError, MAX_INSTR_LEN};
pub use insn::{AluOp, Cc, Instr, MemRef, MemSize};
pub use reg::{Flags, Reg, ABI};

/// TLS offset of the stack-canary cookie (mirrors x86-64's `%fs:0x28`).
pub const TLS_CANARY_OFFSET: i32 = 0x28;
/// First TLS offset reserved as an instrumentation spill slot.
pub const TLS_SCRATCH0: i32 = 0x100;
/// Second TLS spill slot.
pub const TLS_SCRATCH1: i32 = 0x108;
/// Third TLS spill slot (used to preserve the flags word).
pub const TLS_SCRATCH2: i32 = 0x110;
/// Size of the per-thread TLS block mapped by the loader.
pub const TLS_BLOCK_SIZE: u64 = 0x200;
