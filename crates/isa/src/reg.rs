//! General-purpose registers, the flags word, and the JX-64 ABI.

use std::fmt;

/// One of the sixteen 64-bit general-purpose registers `r0`–`r15`.
///
/// `r15` is the stack pointer and `r14` the frame pointer by convention
/// (see [`ABI`]); the hardware itself treats all sixteen uniformly except
/// for `push`/`pop`/`call`/`ret`, which implicitly use `r15`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
#[allow(missing_docs)] // r0..r13 are uniform general-purpose registers
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    /// Frame pointer (`fp`).
    R14 = 14,
    /// Stack pointer (`sp`).
    R15 = 15,
}

impl Reg {
    /// The stack pointer alias for [`Reg::R15`].
    pub const SP: Reg = Reg::R15;
    /// The frame pointer alias for [`Reg::R14`].
    pub const FP: Reg = Reg::R14;

    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Numeric index in `0..16`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`; use [`Reg::try_from_index`] for fallible
    /// conversion of untrusted input.
    #[inline]
    pub fn from_index(idx: usize) -> Reg {
        Reg::try_from_index(idx).expect("register index out of range")
    }

    /// Fallible counterpart of [`Reg::from_index`].
    #[inline]
    pub fn try_from_index(idx: usize) -> Option<Reg> {
        if idx < 16 {
            Some(Reg::ALL[idx])
        } else {
            None
        }
    }

    /// A 16-bit mask with only this register's bit set, for liveness sets.
    #[inline]
    pub fn bit(self) -> u16 {
        1 << self.index()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::SP => write!(f, "sp"),
            Reg::FP => write!(f, "fp"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

/// The JX-64 procedure-call convention.
///
/// Mirrors the System V x86-64 split that gives §4.1.2 of the paper its
/// liveness hazards: callers may rely on callee-saved registers surviving
/// calls, and `ipa-ra`-style compilers may break the caller-saved contract
/// for intra-module calls.
pub struct ABI;

impl ABI {
    /// Registers used to pass the first six integer arguments.
    pub const ARGS: [Reg; 6] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];
    /// Register holding an integer return value.
    pub const RET: Reg = Reg::R0;
    /// Caller-saved (volatile) registers: `r0`–`r7`.
    pub const CALLER_SAVED: [Reg; 8] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
    ];
    /// Callee-saved (non-volatile) registers: `r8`–`r14`.
    pub const CALLEE_SAVED: [Reg; 7] = [
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::FP,
    ];

    /// Mask of caller-saved registers.
    pub fn caller_saved_mask() -> u16 {
        Self::CALLER_SAVED.iter().map(|r| r.bit()).sum()
    }

    /// Mask of callee-saved registers (including the frame pointer).
    pub fn callee_saved_mask() -> u16 {
        Self::CALLEE_SAVED.iter().map(|r| r.bit()).sum()
    }
}

/// The four arithmetic condition flags, packed into a byte.
///
/// ALU instructions write all four; conditional branches read them. The
/// flag-liveness analysis of §3.3.2 decides whether instrumentation needs
/// to preserve this word around an inline check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag (unsigned overflow / borrow).
    pub cf: bool,
    /// Overflow flag (signed overflow).
    pub of: bool,
}

impl Flags {
    /// Packs the flags into the low four bits of a byte
    /// (bit 0 = ZF, 1 = SF, 2 = CF, 3 = OF).
    pub fn to_byte(self) -> u8 {
        (self.zf as u8) | (self.sf as u8) << 1 | (self.cf as u8) << 2 | (self.of as u8) << 3
    }

    /// Inverse of [`Flags::to_byte`]; ignores the high four bits.
    pub fn from_byte(b: u8) -> Flags {
        Flags {
            zf: b & 1 != 0,
            sf: b & 2 != 0,
            cf: b & 4 != 0,
            of: b & 8 != 0,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}]",
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.cf { 'C' } else { '-' },
            if self.of { 'O' } else { '-' }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), *r);
        }
        assert_eq!(Reg::try_from_index(16), None);
    }

    #[test]
    fn sp_fp_aliases() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(Reg::FP, Reg::R14);
        assert_eq!(format!("{}", Reg::SP), "sp");
        assert_eq!(format!("{}", Reg::R3), "r3");
    }

    #[test]
    fn abi_masks_are_disjoint_and_cover_all_but_sp() {
        let caller = ABI::caller_saved_mask();
        let callee = ABI::callee_saved_mask();
        assert_eq!(caller & callee, 0);
        assert_eq!(caller | callee | Reg::SP.bit(), 0xffff);
    }

    #[test]
    fn flags_byte_roundtrip() {
        for b in 0..16u8 {
            assert_eq!(Flags::from_byte(b).to_byte(), b);
        }
        let f = Flags {
            zf: true,
            sf: false,
            cf: true,
            of: false,
        };
        assert_eq!(format!("{f}"), "[Z-C-]");
    }
}
