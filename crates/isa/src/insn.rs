//! The decoded instruction form and its static metadata.

use crate::reg::Reg;
use std::fmt;

/// Width of a memory access in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum MemSize {
    /// 1 byte.
    B1 = 1,
    /// 2 bytes.
    B2 = 2,
    /// 4 bytes.
    B4 = 4,
    /// 8 bytes.
    B8 = 8,
}

impl MemSize {
    /// Access width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        self as u64
    }

    /// Encoding index in `0..4` (log2 of the width).
    #[inline]
    pub fn log2(self) -> u8 {
        match self {
            MemSize::B1 => 0,
            MemSize::B2 => 1,
            MemSize::B4 => 2,
            MemSize::B8 => 3,
        }
    }

    /// Inverse of [`MemSize::log2`].
    #[inline]
    pub fn from_log2(l: u8) -> Option<MemSize> {
        Some(match l {
            0 => MemSize::B1,
            1 => MemSize::B2,
            2 => MemSize::B4,
            3 => MemSize::B8,
            _ => return None,
        })
    }
}

/// Two-operand ALU operations. All of them set the four condition flags.
///
/// `Cmp` and `Test` compute `Sub`/`And` respectively but only write the
/// flags, not the destination register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Multiplication (low 64 bits).
    Mul = 2,
    /// Unsigned division; division by zero raises a fault.
    Divu = 3,
    /// Unsigned remainder; division by zero raises a fault.
    Modu = 4,
    /// Bitwise and.
    And = 5,
    /// Bitwise or.
    Or = 6,
    /// Bitwise exclusive-or.
    Xor = 7,
    /// Logical shift left (count masked to 63).
    Shl = 8,
    /// Logical shift right.
    Shr = 9,
    /// Arithmetic shift right.
    Sar = 10,
    /// Flags-only subtract.
    Cmp = 11,
    /// Flags-only and.
    Test = 12,
}

impl AluOp {
    /// All operations, indexed by their encoding.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Divu,
        AluOp::Modu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Cmp,
        AluOp::Test,
    ];

    /// Decodes an operation index.
    pub fn from_u8(v: u8) -> Option<AluOp> {
        Self::ALL.get(v as usize).copied()
    }

    /// Whether the operation writes its destination register
    /// (`Cmp`/`Test` do not).
    pub fn writes_dest(self) -> bool {
        !matches!(self, AluOp::Cmp | AluOp::Test)
    }

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Divu => "div",
            AluOp::Modu => "mod",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Cmp => "cmp",
            AluOp::Test => "test",
        }
    }
}

/// Condition codes for conditional branches, in terms of the flags written
/// by the most recent ALU instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Cc {
    /// Equal (ZF).
    Eq = 0,
    /// Not equal (!ZF).
    Ne = 1,
    /// Signed less-than (SF != OF).
    Lt = 2,
    /// Signed less-or-equal (ZF || SF != OF).
    Le = 3,
    /// Signed greater-than.
    Gt = 4,
    /// Signed greater-or-equal.
    Ge = 5,
    /// Unsigned below (CF).
    B = 6,
    /// Unsigned at-or-above (!CF).
    Ae = 7,
}

impl Cc {
    /// All condition codes, indexed by encoding.
    pub const ALL: [Cc; 8] = [Cc::Eq, Cc::Ne, Cc::Lt, Cc::Le, Cc::Gt, Cc::Ge, Cc::B, Cc::Ae];

    /// Decodes a condition-code index.
    pub fn from_u8(v: u8) -> Option<Cc> {
        Self::ALL.get(v as usize).copied()
    }

    /// The condition with the opposite truth value.
    pub fn negate(self) -> Cc {
        match self {
            Cc::Eq => Cc::Ne,
            Cc::Ne => Cc::Eq,
            Cc::Lt => Cc::Ge,
            Cc::Le => Cc::Gt,
            Cc::Gt => Cc::Le,
            Cc::Ge => Cc::Lt,
            Cc::B => Cc::Ae,
            Cc::Ae => Cc::B,
        }
    }

    /// Mnemonic suffix (`je`, `jne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cc::Eq => "je",
            Cc::Ne => "jne",
            Cc::Lt => "jl",
            Cc::Le => "jle",
            Cc::Gt => "jg",
            Cc::Ge => "jge",
            Cc::B => "jb",
            Cc::Ae => "jae",
        }
    }
}

/// A decoded JX-64 instruction.
///
/// Relative branch displacements (`rel`) are measured from the **end** of
/// the instruction, as on x86.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stops the processor (only meaningful in freestanding tests; programs
    /// normally exit via the `exit` syscall).
    Halt,
    /// Raises an explicit trap fault (like x86 `int3`/`ud2`).
    Trap,
    /// `rd = rs`.
    MovRr {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd = imm` (full 64-bit immediate; how absolute code pointers are
    /// materialized in non-PIC code).
    MovI64 {
        /// Destination register.
        rd: Reg,
        /// 64-bit immediate.
        imm: u64,
    },
    /// `rd = sign_extend(imm)`.
    MovI32 {
        /// Destination register.
        rd: Reg,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// `rd = pc_of_next_instruction + disp` — PC-relative address
    /// materialization, the backbone of position-independent code.
    LeaPc {
        /// Destination register.
        rd: Reg,
        /// Displacement from the next instruction's address.
        disp: i32,
    },
    /// `rd = base + disp` (no memory access, no flags).
    Lea {
        /// Destination register.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
    },
    /// `rd = zero_extend(mem[base + disp])`.
    Ld {
        /// Access width.
        size: MemSize,
        /// Destination register.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
    },
    /// `mem[base + disp] = truncate(rs)`.
    St {
        /// Access width.
        size: MemSize,
        /// Value register.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
    },
    /// `rd = mem[base + idx * (1 << scale) + disp]` — indexed load, used for
    /// arrays and jump tables.
    LdIdx {
        /// Access width.
        size: MemSize,
        /// Destination register.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Index register.
        idx: Reg,
        /// log2 of the index scale.
        scale: u8,
        /// Displacement.
        disp: i32,
    },
    /// Indexed store.
    StIdx {
        /// Access width.
        size: MemSize,
        /// Value register.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Index register.
        idx: Reg,
        /// log2 of the index scale.
        scale: u8,
        /// Displacement.
        disp: i32,
    },
    /// `rd = rd <op> rs`, setting all four flags.
    AluRr {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        rd: Reg,
        /// Right operand.
        rs: Reg,
    },
    /// `rd = rd <op> sign_extend(imm)`, setting all four flags.
    AluRi {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        rd: Reg,
        /// Sign-extended right operand.
        imm: i32,
    },
    /// `rd = -rd`, setting flags.
    Neg {
        /// Register negated in place.
        rd: Reg,
    },
    /// `rd = !rd`, setting flags.
    Not {
        /// Register complemented in place.
        rd: Reg,
    },
    /// `sp -= 8; mem[sp] = rs`.
    Push {
        /// Register pushed.
        rs: Reg,
    },
    /// `rd = mem[sp]; sp += 8`.
    Pop {
        /// Register popped into.
        rd: Reg,
    },
    /// Pushes the packed flags word.
    PushF,
    /// Pops the packed flags word.
    PopF,
    /// Unconditional PC-relative jump.
    Jmp {
        /// Displacement from the next instruction.
        rel: i32,
    },
    /// Conditional PC-relative jump.
    Jcc {
        /// Branch condition.
        cc: Cc,
        /// Displacement from the next instruction.
        rel: i32,
    },
    /// PC-relative call: pushes the return address, jumps.
    Call {
        /// Displacement from the next instruction.
        rel: i32,
    },
    /// Indirect call through a register.
    CallInd {
        /// Register holding the target.
        rs: Reg,
    },
    /// Indirect jump through a register.
    JmpInd {
        /// Register holding the target.
        rs: Reg,
    },
    /// Pops the return address and jumps to it.
    Ret,
    /// System call: number in `r0`, arguments in `r1`–`r5`, result in `r0`.
    Syscall,
    /// `rd = tls[off]` — thread-local read (canary cookie, scratch slots).
    RdTls {
        /// Destination register.
        rd: Reg,
        /// Byte offset within the TLS block.
        off: i32,
    },
    /// `tls[off] = rs`.
    WrTls {
        /// Value register.
        rs: Reg,
        /// Byte offset within the TLS block.
        off: i32,
    },
}

impl Instr {
    /// Whether this instruction is a control-transfer instruction: a
    /// branch, call, return, halt or trap — anything that ends a basic
    /// block.
    pub fn is_cti(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. }
                | Instr::Jcc { .. }
                | Instr::Call { .. }
                | Instr::CallInd { .. }
                | Instr::JmpInd { .. }
                | Instr::Ret
                | Instr::Halt
                | Instr::Trap
        )
    }

    /// Whether this is an *indirect* control transfer (target unknown
    /// statically) — the instructions CFI instruments.
    pub fn is_indirect_cti(&self) -> bool {
        matches!(self, Instr::CallInd { .. } | Instr::JmpInd { .. } | Instr::Ret)
    }

    /// Whether this is a call of either kind.
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::Call { .. } | Instr::CallInd { .. })
    }

    /// Whether executing this instruction writes the condition flags.
    pub fn sets_flags(&self) -> bool {
        matches!(
            self,
            Instr::AluRr { .. } | Instr::AluRi { .. } | Instr::Neg { .. } | Instr::Not { .. } | Instr::PopF
        )
    }

    /// Whether executing this instruction reads the condition flags.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Instr::Jcc { .. } | Instr::PushF)
    }

    /// Whether this instruction loads from or stores to application memory
    /// through a register-addressed operand (the accesses JASan checks).
    /// Stack pushes/pops and TLS accesses are excluded, as in the paper's
    /// sanitizer which does not instrument its own spill traffic.
    pub fn mem_access(&self) -> Option<MemRef> {
        match *self {
            Instr::Ld { size, base, disp, .. } => Some(MemRef {
                base,
                idx: None,
                scale: 0,
                disp,
                size,
                is_store: false,
            }),
            Instr::St { size, base, disp, .. } => Some(MemRef {
                base,
                idx: None,
                scale: 0,
                disp,
                size,
                is_store: true,
            }),
            Instr::LdIdx {
                size,
                base,
                idx,
                scale,
                disp,
                ..
            } => Some(MemRef {
                base,
                idx: Some(idx),
                scale,
                disp,
                size,
                is_store: false,
            }),
            Instr::StIdx {
                size,
                base,
                idx,
                scale,
                disp,
                ..
            } => Some(MemRef {
                base,
                idx: Some(idx),
                scale,
                disp,
                size,
                is_store: true,
            }),
            _ => None,
        }
    }

    /// Mask of registers read by this instruction (excluding implicit `sp`
    /// uses of push/pop/call/ret, which the liveness analysis treats
    /// separately via [`Instr::uses_sp`]).
    pub fn uses(&self) -> u16 {
        match *self {
            Instr::MovRr { rs, .. } => rs.bit(),
            Instr::Lea { base, .. } => base.bit(),
            Instr::Ld { base, .. } => base.bit(),
            Instr::St { rs, base, .. } => rs.bit() | base.bit(),
            Instr::LdIdx { base, idx, .. } => base.bit() | idx.bit(),
            Instr::StIdx { rs, base, idx, .. } => rs.bit() | base.bit() | idx.bit(),
            // ALU destinations are read-modify-write.
            Instr::AluRr { rd, rs, .. } => rd.bit() | rs.bit(),
            Instr::AluRi { rd, .. } => rd.bit(),
            Instr::Neg { rd } | Instr::Not { rd } => rd.bit(),
            Instr::Push { rs } => rs.bit(),
            Instr::CallInd { rs } | Instr::JmpInd { rs } => rs.bit(),
            Instr::WrTls { rs, .. } => rs.bit(),
            // Syscalls read the number and up to five arguments.
            Instr::Syscall => {
                Reg::R0.bit() | Reg::R1.bit() | Reg::R2.bit() | Reg::R3.bit() | Reg::R4.bit() | Reg::R5.bit()
            }
            _ => 0,
        }
    }

    /// Mask of registers written by this instruction.
    pub fn defs(&self) -> u16 {
        match *self {
            Instr::MovRr { rd, .. }
            | Instr::MovI64 { rd, .. }
            | Instr::MovI32 { rd, .. }
            | Instr::LeaPc { rd, .. }
            | Instr::Lea { rd, .. }
            | Instr::Ld { rd, .. }
            | Instr::LdIdx { rd, .. }
            | Instr::Pop { rd }
            | Instr::RdTls { rd, .. } => rd.bit(),
            Instr::AluRr { op, rd, .. } | Instr::AluRi { op, rd, .. } if op.writes_dest() => {
                rd.bit()
            }
            Instr::AluRr { .. } | Instr::AluRi { .. } => 0,
            Instr::Neg { rd } | Instr::Not { rd } => rd.bit(),
            // Syscall clobbers the result register.
            Instr::Syscall => Reg::R0.bit(),
            _ => 0,
        }
    }

    /// Whether the instruction implicitly reads/writes the stack pointer.
    pub fn uses_sp(&self) -> bool {
        matches!(
            self,
            Instr::Push { .. }
                | Instr::Pop { .. }
                | Instr::PushF
                | Instr::PopF
                | Instr::Call { .. }
                | Instr::CallInd { .. }
                | Instr::Ret
        )
    }

    /// Deterministic execution cost in cycles, the unit of the performance
    /// model (see `crates/dbt`). Values are loosely modelled on a modern
    /// out-of-order core's amortized throughput costs: most instructions
    /// are 1 cycle, memory 2, multiplies 3, divides 20, syscalls 150.
    pub fn cost(&self) -> u64 {
        match *self {
            Instr::Ld { .. } | Instr::St { .. } | Instr::LdIdx { .. } | Instr::StIdx { .. } => 2,
            Instr::Push { .. } | Instr::Pop { .. } => 2,
            Instr::AluRr { op, .. } | Instr::AluRi { op, .. } => match op {
                AluOp::Mul => 3,
                AluOp::Divu | AluOp::Modu => 20,
                _ => 1,
            },
            Instr::Call { .. } | Instr::CallInd { .. } | Instr::Ret => 2,
            Instr::Syscall => 150,
            Instr::MovI64 { .. } => 1,
            _ => 1,
        }
    }
}

/// Description of a register-addressed memory operand, as returned by
/// [`Instr::mem_access`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Base register.
    pub base: Reg,
    /// Optional index register.
    pub idx: Option<Reg>,
    /// log2 scale applied to the index register.
    pub scale: u8,
    /// Constant displacement.
    pub disp: i32,
    /// Access width.
    pub size: MemSize,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn mem(f: &mut fmt::Formatter<'_>, base: Reg, disp: i32) -> fmt::Result {
            if disp == 0 {
                write!(f, "[{base}]")
            } else if disp > 0 {
                write!(f, "[{base}+{disp:#x}]")
            } else {
                write!(f, "[{base}-{:#x}]", -(disp as i64))
            }
        }
        fn memx(f: &mut fmt::Formatter<'_>, base: Reg, idx: Reg, scale: u8, disp: i32) -> fmt::Result {
            write!(f, "[{base}+{idx}*{}", 1u32 << scale)?;
            if disp > 0 {
                write!(f, "+{disp:#x}")?;
            } else if disp < 0 {
                write!(f, "-{:#x}", -(disp as i64))?;
            }
            write!(f, "]")
        }
        fn rel32(f: &mut fmt::Formatter<'_>, rel: i32) -> fmt::Result {
            if rel >= 0 {
                write!(f, "pc+{rel:#x}")
            } else {
                write!(f, "pc-{:#x}", -(rel as i64))
            }
        }
        let sz = |s: MemSize| match s {
            MemSize::B1 => "1",
            MemSize::B2 => "2",
            MemSize::B4 => "4",
            MemSize::B8 => "8",
        };
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Trap => write!(f, "trap"),
            Instr::MovRr { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Instr::MovI64 { rd, imm } => write!(f, "mov {rd}, {imm:#x}"),
            Instr::MovI32 { rd, imm } => write!(f, "mov {rd}, {imm}"),
            Instr::LeaPc { rd, disp } => {
                write!(f, "lea {rd}, [")?;
                rel32(f, disp)?;
                write!(f, "]")
            }
            Instr::Lea { rd, base, disp } => {
                write!(f, "lea {rd}, ")?;
                mem(f, base, disp)
            }
            Instr::Ld { size, rd, base, disp } => {
                write!(f, "ld{} {rd}, ", sz(size))?;
                mem(f, base, disp)
            }
            Instr::St { size, rs, base, disp } => {
                write!(f, "st{} ", sz(size))?;
                mem(f, base, disp)?;
                write!(f, ", {rs}")
            }
            Instr::LdIdx {
                size,
                rd,
                base,
                idx,
                scale,
                disp,
            } => {
                write!(f, "ld{} {rd}, ", sz(size))?;
                memx(f, base, idx, scale, disp)
            }
            Instr::StIdx {
                size,
                rs,
                base,
                idx,
                scale,
                disp,
            } => {
                write!(f, "st{} ", sz(size))?;
                memx(f, base, idx, scale, disp)?;
                write!(f, ", {rs}")
            }
            Instr::AluRr { op, rd, rs } => write!(f, "{} {rd}, {rs}", op.mnemonic()),
            Instr::AluRi { op, rd, imm } => write!(f, "{} {rd}, {imm}", op.mnemonic()),
            Instr::Neg { rd } => write!(f, "neg {rd}"),
            Instr::Not { rd } => write!(f, "not {rd}"),
            Instr::Push { rs } => write!(f, "push {rs}"),
            Instr::Pop { rd } => write!(f, "pop {rd}"),
            Instr::PushF => write!(f, "pushf"),
            Instr::PopF => write!(f, "popf"),
            Instr::Jmp { rel } => {
                write!(f, "jmp ")?;
                rel32(f, rel)
            }
            Instr::Jcc { cc, rel } => {
                write!(f, "{} ", cc.mnemonic())?;
                rel32(f, rel)
            }
            Instr::Call { rel } => {
                write!(f, "call ")?;
                rel32(f, rel)
            }
            Instr::CallInd { rs } => write!(f, "call {rs}"),
            Instr::JmpInd { rs } => write!(f, "jmp {rs}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Syscall => write!(f, "syscall"),
            Instr::RdTls { rd, off } => write!(f, "rdtls {rd}, {off:#x}"),
            Instr::WrTls { rs, off } => write!(f, "wrtls {rs}, {off:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cti_classification() {
        assert!(Instr::Ret.is_cti());
        assert!(Instr::Ret.is_indirect_cti());
        assert!(Instr::Jmp { rel: 0 }.is_cti());
        assert!(!Instr::Jmp { rel: 0 }.is_indirect_cti());
        assert!(Instr::CallInd { rs: Reg::R3 }.is_indirect_cti());
        assert!(!Instr::Nop.is_cti());
        assert!(Instr::Call { rel: 4 }.is_call());
    }

    #[test]
    fn flag_effects() {
        assert!(Instr::AluRr {
            op: AluOp::Add,
            rd: Reg::R0,
            rs: Reg::R1
        }
        .sets_flags());
        assert!(!Instr::MovRr { rd: Reg::R0, rs: Reg::R1 }.sets_flags());
        assert!(Instr::Jcc { cc: Cc::Eq, rel: 0 }.reads_flags());
        assert!(!Instr::Jmp { rel: 0 }.reads_flags());
    }

    #[test]
    fn mem_access_metadata() {
        let ld = Instr::Ld {
            size: MemSize::B8,
            rd: Reg::R1,
            base: Reg::R2,
            disp: 16,
        };
        let m = ld.mem_access().unwrap();
        assert!(!m.is_store);
        assert_eq!(m.base, Reg::R2);
        assert_eq!(m.size.bytes(), 8);
        assert!(Instr::Push { rs: Reg::R0 }.mem_access().is_none());
        assert!(Instr::RdTls { rd: Reg::R0, off: 0 }.mem_access().is_none());
    }

    #[test]
    fn uses_defs() {
        let st = Instr::St {
            size: MemSize::B4,
            rs: Reg::R3,
            base: Reg::R4,
            disp: 0,
        };
        assert_eq!(st.uses(), Reg::R3.bit() | Reg::R4.bit());
        assert_eq!(st.defs(), 0);
        let cmp = Instr::AluRr {
            op: AluOp::Cmp,
            rd: Reg::R1,
            rs: Reg::R2,
        };
        assert_eq!(cmp.defs(), 0, "cmp must not define its destination");
        assert_eq!(cmp.uses(), Reg::R1.bit() | Reg::R2.bit());
    }

    #[test]
    fn cc_negation_is_involutive() {
        for cc in Cc::ALL {
            assert_eq!(cc.negate().negate(), cc);
        }
    }

    #[test]
    fn display_samples() {
        assert_eq!(
            format!(
                "{}",
                Instr::Ld {
                    size: MemSize::B8,
                    rd: Reg::R1,
                    base: Reg::SP,
                    disp: 8
                }
            ),
            "ld8 r1, [sp+0x8]"
        );
        assert_eq!(format!("{}", Instr::Jcc { cc: Cc::Ne, rel: -5 }), "jne pc-0x5");
    }
}
