//! Property tests for the JX-64 encoder/decoder.

use janitizer_isa::{decode, AluOp, Cc, DecodeError, Instr, MemSize, Reg, MAX_INSTR_LEN};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(Reg::from_index)
}

fn arb_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![
        Just(MemSize::B1),
        Just(MemSize::B2),
        Just(MemSize::B4),
        Just(MemSize::B8)
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    (0u8..13).prop_map(|v| AluOp::from_u8(v).unwrap())
}

fn arb_cc() -> impl Strategy<Value = Cc> {
    (0u8..8).prop_map(|v| Cc::from_u8(v).unwrap())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Trap),
        Just(Instr::Ret),
        Just(Instr::Syscall),
        Just(Instr::PushF),
        Just(Instr::PopF),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::MovRr { rd, rs }),
        (arb_reg(), any::<u64>()).prop_map(|(rd, imm)| Instr::MovI64 { rd, imm }),
        (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Instr::MovI32 { rd, imm }),
        (arb_reg(), any::<i32>()).prop_map(|(rd, disp)| Instr::LeaPc { rd, disp }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, base, disp)| Instr::Lea { rd, base, disp }),
        (arb_size(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(size, rd, base, disp)| Instr::Ld { size, rd, base, disp }),
        (arb_size(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(size, rs, base, disp)| Instr::St { size, rs, base, disp }),
        (arb_size(), arb_reg(), arb_reg(), arb_reg(), 0u8..4, any::<i32>()).prop_map(
            |(size, rd, base, idx, scale, disp)| Instr::LdIdx {
                size,
                rd,
                base,
                idx,
                scale,
                disp
            }
        ),
        (arb_size(), arb_reg(), arb_reg(), arb_reg(), 0u8..4, any::<i32>()).prop_map(
            |(size, rs, base, idx, scale, disp)| Instr::StIdx {
                size,
                rs,
                base,
                idx,
                scale,
                disp
            }
        ),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs)| Instr::AluRr { op, rd, rs }),
        (arb_alu(), arb_reg(), any::<i32>()).prop_map(|(op, rd, imm)| Instr::AluRi { op, rd, imm }),
        arb_reg().prop_map(|rd| Instr::Neg { rd }),
        arb_reg().prop_map(|rd| Instr::Not { rd }),
        arb_reg().prop_map(|rs| Instr::Push { rs }),
        arb_reg().prop_map(|rd| Instr::Pop { rd }),
        any::<i32>().prop_map(|rel| Instr::Jmp { rel }),
        (arb_cc(), any::<i32>()).prop_map(|(cc, rel)| Instr::Jcc { cc, rel }),
        any::<i32>().prop_map(|rel| Instr::Call { rel }),
        arb_reg().prop_map(|rs| Instr::CallInd { rs }),
        arb_reg().prop_map(|rs| Instr::JmpInd { rs }),
        (arb_reg(), any::<i32>()).prop_map(|(rd, off)| Instr::RdTls { rd, off }),
        (arb_reg(), any::<i32>()).prop_map(|(rs, off)| Instr::WrTls { rs, off }),
    ]
}

proptest! {
    /// encode ∘ decode is the identity and reports the exact length.
    #[test]
    fn encode_decode_roundtrip(insn in arb_instr()) {
        let mut buf = Vec::new();
        insn.encode(&mut buf);
        prop_assert_eq!(buf.len(), insn.encoded_len());
        prop_assert!(buf.len() <= MAX_INSTR_LEN);
        let (decoded, next) = decode(&buf, 0).unwrap();
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(next, buf.len());
    }

    /// A stream of instructions decodes back instruction-by-instruction,
    /// even when embedded at a non-zero offset.
    #[test]
    fn stream_roundtrip(insns in prop::collection::vec(arb_instr(), 1..40), prefix in 0usize..8) {
        let mut buf = vec![0u8; prefix]; // leading nops
        let mut offsets = Vec::new();
        for i in &insns {
            offsets.push(buf.len());
            i.encode(&mut buf);
        }
        for (i, &off) in insns.iter().zip(&offsets) {
            let (decoded, _) = decode(&buf, off).unwrap();
            prop_assert_eq!(decoded, *i);
        }
    }

    /// Decoding arbitrary bytes never panics: it either yields an
    /// instruction with an in-bounds length or a structured error.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        match decode(&bytes, 0) {
            Ok((_, next)) => prop_assert!(next <= bytes.len()),
            Err(DecodeError::UnknownOpcode { .. })
            | Err(DecodeError::Truncated { .. })
            | Err(DecodeError::BadScale { .. }) => {}
        }
    }

    /// Truncating any valid encoding yields `Truncated`, never garbage.
    #[test]
    fn truncation_detected(insn in arb_instr(), cut in 1usize..10) {
        let mut buf = Vec::new();
        insn.encode(&mut buf);
        if cut < buf.len() {
            buf.truncate(buf.len() - cut);
            if !buf.is_empty() {
                prop_assert_eq!(decode(&buf, 0), Err(DecodeError::Truncated { offset: 0 }));
            }
        }
    }

    /// Display never panics and is non-empty (C-DEBUG-NONEMPTY analogue).
    #[test]
    fn display_nonempty(insn in arb_instr()) {
        let text = format!("{insn}");
        prop_assert!(!text.is_empty());
    }

    /// defs ⊆ (defs ∪ uses) sanity and cost is positive.
    #[test]
    fn metadata_sanity(insn in arb_instr()) {
        prop_assert!(insn.cost() >= 1);
        if insn.is_indirect_cti() {
            prop_assert!(insn.is_cti());
        }
    }
}
