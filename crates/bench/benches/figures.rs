//! One Criterion bench per paper table/figure: each regenerates the
//! figure's series (at a reduced workload scale so `cargo bench`
//! completes quickly) and prints the headline rows, while Criterion times
//! the end-to-end pipeline that produces them.
//!
//! For full-size tables run `janitizer-eval <figN>` instead; this harness
//! is about demonstrating that every figure is reproducible from one
//! command and tracking harness performance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use janitizer_eval::*;
use std::sync::OnceLock;

const SCALE: f64 = 0.05;

fn world() -> &'static EvalWorld {
    static WORLD: OnceLock<EvalWorld> = OnceLock::new();
    WORLD.get_or_init(|| build_eval_world(SCALE))
}

fn show(fig: &FigResult) {
    let means = if fig.use_mean { fig.mean() } else { fig.geomean() };
    let cells: Vec<String> = fig
        .columns
        .iter()
        .zip(&means)
        .map(|(c, v)| format!("{c}={}", v.map(|x| format!("{x:.3}")).unwrap_or("x".into())))
        .collect();
    eprintln!("[{}] {}", fig.title, cells.join("  "));
}

fn bench_fig7(c: &mut Criterion) {
    let ew = world();
    let mut g = c.benchmark_group("fig7_jasan");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("regenerate", |b| b.iter(|| fig7(ew)));
    g.finish();
    show(&fig7(ew));
}

fn bench_fig8(c: &mut Criterion) {
    let ew = world();
    let mut g = c.benchmark_group("fig8_breakdown");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("regenerate", |b| b.iter(|| fig8(ew)));
    g.finish();
    show(&fig8(ew));
}

fn bench_fig9(c: &mut Criterion) {
    let ew = world();
    let mut g = c.benchmark_group("fig9_jcfi");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("regenerate", |b| b.iter(|| fig9(ew)));
    g.finish();
    show(&fig9(ew));
}

fn bench_fig10(c: &mut Criterion) {
    let ew = world();
    // The full 624-pair suite is sized for the eval binary; bench a
    // deterministic 1/8 slice.
    let mut g = c.benchmark_group("fig10_juliet");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    let base = ew.world.store.clone();
    g.bench_function("slice", |b| {
        b.iter(|| {
            let suite = janitizer_workloads::juliet_suite();
            let mut flagged = 0usize;
            for case in suite.iter().step_by(8) {
                let store = janitizer_workloads::build_case(&base, "case", &case.bad);
                let opts = janitizer_core::HybridOptions {
                    load: janitizer_vm::LoadOptions {
                        preload: vec![janitizer_jasan::RT_MODULE.into()],
                        ..Default::default()
                    },
                    ..Default::default()
                };
                if let Ok(run) =
                    janitizer_core::run_hybrid(&store, "case", janitizer_jasan::Jasan::hybrid(), &opts)
                {
                    if matches!(run.outcome, janitizer_core::RunOutcome::Violation(_)) {
                        flagged += 1;
                    }
                }
            }
            flagged
        })
    });
    g.finish();
    let r = fig10(&ew.world.store);
    eprintln!(
        "[Figure 10] Valgrind TP={} FN={}  JASan TP={} FN={}  (FP {} / {})",
        r.valgrind.true_positives,
        r.valgrind.false_negatives,
        r.jasan.true_positives,
        r.jasan.false_negatives,
        r.valgrind.false_positives,
        r.jasan.false_positives
    );
}

fn bench_fig11(c: &mut Criterion) {
    let ew = world();
    let mut g = c.benchmark_group("fig11_fwd_bwd");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("regenerate", |b| b.iter(|| fig11(ew)));
    g.finish();
    show(&fig11(ew));
}

fn bench_fig12(c: &mut Criterion) {
    let ew = world();
    let mut g = c.benchmark_group("fig12_dair");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("regenerate", |b| b.iter(|| fig12(ew)));
    g.finish();
    show(&fig12(ew));
}

fn bench_fig13(c: &mut Criterion) {
    let ew = world();
    let mut g = c.benchmark_group("fig13_sair");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("regenerate", |b| b.iter(|| fig13(ew)));
    g.finish();
    show(&fig13(ew));
}

fn bench_fig14(c: &mut Criterion) {
    let ew = world();
    let mut g = c.benchmark_group("fig14_coverage");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("regenerate", |b| b.iter(|| fig14(ew)));
    g.finish();
    show(&fig14(ew));
}

criterion_group!(
    figures,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14
);
criterion_main!(figures);
