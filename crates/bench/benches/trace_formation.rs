//! Trace-formation benchmarks: the cost of superblock discovery itself.
//! Formation rides the existing hot-countdown on every cached block, so
//! the interesting numbers are (a) a cold run that translates, warms up,
//! and stitches superblocks versus one with the trace layer disabled —
//! the formation machinery must not eat the win it buys — and (b) the
//! same comparison at an aggressive threshold, where every loop back edge
//! triggers a formation attempt almost immediately.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use janitizer_asm::{assemble, AsmOptions};
use janitizer_dbt::{DecodedBlock, Engine, EngineOptions, TbItem, Tool};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CompileOptions};
use janitizer_vm::{load_process, LoadOptions, ModuleStore, Process};

struct Passthrough;

impl Tool for Passthrough {
    fn name(&self) -> &str {
        "passthrough"
    }
    fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        block
            .insns
            .iter()
            .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
            .collect()
    }
}

fn bench_store() -> ModuleStore {
    // Call-heavy nested loops: many distinct blocks with a dominant
    // successor chain, the shape trace formation stitches.
    let src = r#"
        long work(long x) { return x * 3 + 1; }
        long main() {
            long s = 0;
            for (long r = 0; r < 40; r++)
                for (long i = 0; i < 500; i++)
                    s = (s + work(i)) % 100000;
            return s % 256;
        }
    "#;
    let asm = compile(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let crt = ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n trap\n";
    let o1 = assemble("b.s", &asm, &AsmOptions::default()).unwrap();
    let o2 = assemble("crt.s", crt, &AsmOptions::default()).unwrap();
    let image = link(&[o1, o2], &LinkOptions::executable("bench")).unwrap();
    let mut store = ModuleStore::new();
    store.add(image);
    store
}

fn bench_formation(c: &mut Criterion) {
    let store = bench_store();
    let mut g = c.benchmark_group("trace_formation");
    g.throughput(Throughput::Elements(20_000));
    let configs: [(&str, EngineOptions); 3] = [
        (
            "cold_no_traces",
            EngineOptions {
                traces: false,
                ..EngineOptions::default()
            },
        ),
        ("cold_default_threshold", EngineOptions::default()),
        (
            "cold_eager_threshold",
            EngineOptions {
                trace_hot_threshold: 2,
                ..EngineOptions::default()
            },
        ),
    ];
    for (label, opts) in configs {
        g.bench_function(label, |b| {
            b.iter_batched(
                || load_process(&store, "bench", &LoadOptions::default()).unwrap(),
                |mut proc| {
                    // Fresh engine per run: translation, warm-up counting,
                    // and formation all happen inside the measurement.
                    let mut engine = Engine::new(opts.clone());
                    engine.run(&mut proc, &mut Passthrough, 2_000_000_000)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_formation);
criterion_main!(benches);
