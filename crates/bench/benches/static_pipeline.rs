//! Static-pipeline benchmarks for the analyze-once layer: the cost of a
//! fresh per-module static analysis vs a [`RuleCache`] hit, and a full
//! `run_hybrid` with and without the shared cache — the difference is
//! what every repeated figure cell of `janitizer-eval` saves.

use criterion::{criterion_group, criterion_main, Criterion};
use janitizer_core::{
    analyze_statically, dependency_closure, run_hybrid, HybridOptions, RuleCache,
};
use janitizer_jasan::{Jasan, RT_MODULE};
use janitizer_vm::LoadOptions;
use janitizer_workloads::{build_world, BuildOptions};
use std::sync::Arc;

fn bench_rule_cache(c: &mut Criterion) {
    let world = build_world(&BuildOptions {
        scale: 0.05,
        ..BuildOptions::default()
    });
    let store = &world.store;
    let exe = world.workloads[0].name;
    let image = store.get(exe).expect("workload executable");

    let mut g = c.benchmark_group("static_pipeline");
    g.bench_function("analyze_fresh", |b| {
        b.iter(|| analyze_statically(&image, &Jasan::hybrid()))
    });
    let cache = RuleCache::new();
    let plugin = Jasan::hybrid();
    cache.get_or_analyze(&image, &plugin, true);
    g.bench_function("analyze_cached", |b| {
        b.iter(|| cache.get_or_analyze(&image, &plugin, true))
    });
    g.bench_function("dependency_closure", |b| {
        let roots = vec![exe.to_string(), "ld.so".to_string()];
        b.iter(|| dependency_closure(store, &roots))
    });
    g.finish();
}

fn bench_run_hybrid(c: &mut Criterion) {
    let world = build_world(&BuildOptions {
        scale: 0.02,
        ..BuildOptions::default()
    });
    let store = &world.store;
    let exe = world.workloads[0].name;
    let load = LoadOptions {
        args: vec![world.args[0]],
        preload: vec![RT_MODULE.into()],
        ..LoadOptions::default()
    };

    let mut g = c.benchmark_group("run_hybrid");
    g.sample_size(10);
    let cold = HybridOptions {
        load: load.clone(),
        fuel: 2_000_000_000,
        ..HybridOptions::default()
    };
    g.bench_function("uncached", |b| {
        b.iter(|| run_hybrid(store, exe, Jasan::hybrid(), &cold).unwrap())
    });
    let cache = Arc::new(RuleCache::new());
    let warm = HybridOptions {
        rule_cache: Some(Arc::clone(&cache)),
        ..cold.clone()
    };
    run_hybrid(store, exe, Jasan::hybrid(), &warm).unwrap();
    g.bench_function("cached", |b| {
        b.iter(|| run_hybrid(store, exe, Jasan::hybrid(), &warm).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_rule_cache, bench_run_hybrid);
criterion_main!(benches);
