//! Chained-dispatch benchmarks: the trace layer's dispatcher bypass on a
//! warm code cache. With traces on, direct branches between cached blocks
//! follow chain links and hot paths execute as superblocks, so the hot
//! loop never re-enters the dispatcher; with traces off every transfer
//! pays the full dispatch round trip. The modeled guest state is
//! byte-identical either way — this bench measures the host-time gap the
//! trace layer exists to open.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use janitizer_asm::{assemble, AsmOptions};
use janitizer_dbt::{DecodedBlock, Engine, EngineOptions, TbItem, Tool};
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CompileOptions};
use janitizer_vm::{load_process, LoadOptions, ModuleStore, Process};

/// Pass-through tool: every cycle goes to translate + dispatch, so the
/// measurement isolates the engine's own transfer machinery.
struct Passthrough;

impl Tool for Passthrough {
    fn name(&self) -> &str {
        "passthrough"
    }
    fn instrument_block(&mut self, _proc: &mut Process, block: &DecodedBlock) -> Vec<TbItem> {
        block
            .insns
            .iter()
            .map(|&(pc, i, n)| TbItem::Guest(pc, i, n))
            .collect()
    }
}

fn bench_store() -> ModuleStore {
    // A loop-heavy program: few distinct blocks, many block executions —
    // the dispatch-dominated regime where chaining pays.
    let src = r#"
        long main() {
            long s = 0;
            for (long i = 0; i < 20000; i++) {
                if (i % 3) s += i * 7;
                else s -= i;
                s = s % 100000;
            }
            return s % 256;
        }
    "#;
    let asm = compile(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let crt = ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n trap\n";
    let o1 = assemble("b.s", &asm, &AsmOptions::default()).unwrap();
    let o2 = assemble("crt.s", crt, &AsmOptions::default()).unwrap();
    let image = link(&[o1, o2], &LinkOptions::executable("bench")).unwrap();
    let mut store = ModuleStore::new();
    store.add(image);
    store
}

fn bench_chained(c: &mut Criterion) {
    let store = bench_store();
    let mut g = c.benchmark_group("chained_dispatch");
    g.throughput(Throughput::Elements(20_000));
    for (label, traces) in [("traces_on", true), ("traces_off", false)] {
        // A persistent engine keeps its code cache (and chain links /
        // superblocks) across guest runs, so after the first iteration
        // the hot loop runs entirely on the warm fast path.
        let mut engine = Engine::new(EngineOptions {
            traces,
            ..EngineOptions::default()
        });
        let mut tool = Passthrough;
        let name = format!("warm_{label}");
        g.bench_function(name.as_str(), |b| {
            b.iter_batched(
                || load_process(&store, "bench", &LoadOptions::default()).unwrap(),
                |mut proc| engine.run(&mut proc, &mut tool, 2_000_000_000),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chained);
criterion_main!(benches);
