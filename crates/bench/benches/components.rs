//! Component micro-benchmarks: the building blocks whose costs the
//! hybrid design trades against each other — decoding, static analysis,
//! rule-table construction and lookup, shadow checks, translation and
//! dispatch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use janitizer_asm::{assemble, AsmOptions};
use janitizer_core::{analyze_statically, run_hybrid, HybridOptions};
use janitizer_isa::{decode, Instr, Reg};
use janitizer_jasan::Jasan;
use janitizer_link::{link, LinkOptions};
use janitizer_minic::{compile, CompileOptions};
use janitizer_rules::{RuleFile, RuleTable};
use janitizer_vm::{load_process, LoadOptions, ModuleStore};

fn test_image() -> janitizer_obj::Image {
    let src = r#"
        long work(long *a, long n) {
            long s = 0;
            for (long i = 0; i < n; i++) {
                if (a[i] % 2) s += a[i] * 3;
                else s -= a[i];
            }
            return s;
        }
        long main() {
            long buf[64];
            for (long i = 0; i < 64; i++) buf[i] = i * 7;
            return work(buf, 64) % 256;
        }
    "#;
    let asm = compile(
        src,
        &CompileOptions {
            emit_start: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let crt = ".section text\n.global __stack_chk_fail\n__stack_chk_fail:\n trap\n";
    let o1 = assemble("b.s", &asm, &AsmOptions::default()).unwrap();
    let o2 = assemble("crt.s", crt, &AsmOptions::default()).unwrap();
    link(&[o1, o2], &LinkOptions::executable("bench")).unwrap()
}

fn bench_decode(c: &mut Criterion) {
    // A long instruction stream round-tripped through the encoder.
    let mut bytes = Vec::new();
    for i in 0..10_000u64 {
        Instr::AluRi {
            op: janitizer_isa::AluOp::Add,
            rd: Reg::from_index((i % 14) as usize),
            imm: i as i32,
        }
        .encode(&mut bytes);
        Instr::Ld {
            size: janitizer_isa::MemSize::B8,
            rd: Reg::R1,
            base: Reg::R2,
            disp: (i % 256) as i32,
        }
        .encode(&mut bytes);
    }
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("decode_stream", |b| {
        b.iter(|| {
            let mut off = 0;
            let mut n = 0u64;
            while off < bytes.len() {
                let (_, next) = decode(&bytes, off).unwrap();
                off = next;
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_toolchain(c: &mut Criterion) {
    let src = include_str!("../src/lib.rs"); // any text; compile uses its own source below
    let _ = src;
    let mini = "long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\
                long main() { return fib(20) % 256; }";
    let mut g = c.benchmark_group("toolchain");
    g.bench_function("minic_compile", |b| {
        b.iter(|| compile(mini, &CompileOptions::default()).unwrap())
    });
    let asm_text = compile(mini, &CompileOptions::default()).unwrap();
    g.bench_function("assemble", |b| {
        b.iter(|| assemble("x.s", &asm_text, &AsmOptions::default()).unwrap())
    });
    let obj = assemble("x.s", &asm_text, &AsmOptions::default()).unwrap();
    g.bench_function("link", |b| {
        b.iter_batched(
            || vec![obj.clone()],
            |objs| {
                let mut o = LinkOptions::executable("x");
                o.entry = "main".into();
                link(&objs, &o).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_static_analysis(c: &mut Criterion) {
    let image = test_image();
    let mut g = c.benchmark_group("static_analysis");
    g.bench_function("analyze_module", |b| {
        b.iter(|| janitizer_analysis::analyze_module(&image))
    });
    let cfg = janitizer_analysis::analyze_module(&image);
    g.bench_function("liveness", |b| {
        b.iter(|| janitizer_analysis::compute_liveness(&cfg))
    });
    g.bench_function("jasan_static_pass", |b| {
        b.iter(|| analyze_statically(&image, &Jasan::hybrid()))
    });
    g.finish();
}

fn bench_rule_tables(c: &mut Criterion) {
    let image = test_image();
    let file = analyze_statically(&image, &Jasan::hybrid());
    let bytes = file.to_bytes();
    let mut g = c.benchmark_group("rules");
    g.bench_function("decode_rule_file", |b| {
        b.iter(|| RuleFile::from_bytes(&bytes).unwrap())
    });
    g.bench_function("build_table_pic_adjust", |b| {
        b.iter(|| RuleTable::from_file(&file, 0x1000_0000))
    });
    let table = RuleTable::from_file(&file, 0);
    let addrs: Vec<u64> = file.rules.iter().map(|r| r.bb_addr).collect();
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("lookup_bb", |b| {
        b.iter(|| {
            addrs
                .iter()
                .filter(|a| table.lookup_bb(**a).is_some())
                .count()
        })
    });
    g.finish();
}

fn bench_execution(c: &mut Criterion) {
    let image = test_image();
    let mut store = ModuleStore::new();
    store.add(image);
    let mut g = c.benchmark_group("execution");
    g.sample_size(20);
    g.bench_function("native_interp", |b| {
        b.iter_batched(
            || load_process(&store, "bench", &LoadOptions::default()).unwrap(),
            |mut p| p.run_native(10_000_000),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("hybrid_jasan", |b| {
        b.iter(|| {
            run_hybrid(&store, "bench", Jasan::hybrid(), &HybridOptions::default()).unwrap()
        })
    });
    g.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let image = test_image();
    let mut store = ModuleStore::new();
    store.add(image);
    let mut p = load_process(&store, "bench", &LoadOptions::default()).unwrap();
    janitizer_jasan::map_shadow(&mut p.mem).unwrap();
    janitizer_jasan::poison_range(&mut p, 0x40_0000, 64, janitizer_jasan::POISON_HEAP_REDZONE);
    let mut g = c.benchmark_group("shadow");
    g.throughput(Throughput::Elements(1));
    g.bench_function("check_clean", |b| {
        b.iter(|| janitizer_jasan::check_access(&mut p, 0x41_0000, 8))
    });
    g.bench_function("check_poisoned", |b| {
        b.iter(|| janitizer_jasan::check_access(&mut p, 0x40_0000, 8))
    });
    g.finish();
}

criterion_group!(
    components,
    bench_decode,
    bench_toolchain,
    bench_static_analysis,
    bench_rule_tables,
    bench_execution,
    bench_shadow
);
criterion_main!(components);
