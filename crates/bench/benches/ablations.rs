//! Ablation benches for the design choices DESIGN.md calls out: each
//! compares the full design against a variant with one mechanism
//! disabled, timing the runs and printing the cycle-model deltas (the
//! metric the paper's claims are about).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use janitizer_core::{run_hybrid, HybridOptions};
use janitizer_jasan::{Jasan, JasanOptions, RT_MODULE};
use janitizer_vm::{LoadOptions, ModuleStore};
use janitizer_workloads::{build_world, BuildOptions};
use std::sync::OnceLock;

struct Setup {
    store: ModuleStore,
    name: &'static str,
    load: LoadOptions,
}

fn setup() -> &'static Setup {
    static S: OnceLock<Setup> = OnceLock::new();
    S.get_or_init(|| {
        let world = build_world(&BuildOptions {
            scale: 0.05,
            ..Default::default()
        });
        let name = "mcf";
        let idx = world.workloads.iter().position(|w| w.name == name).unwrap();
        Setup {
            store: world.store,
            name,
            load: LoadOptions {
                args: vec![world.args[idx]],
                preload: vec![RT_MODULE.into()],
                ..Default::default()
            },
        }
    })
}

fn cycles(s: &Setup, plugin: Jasan, opts: &HybridOptions) -> u64 {
    run_hybrid(&s.store, s.name, plugin, opts).unwrap().cycles
}

/// Liveness-guided spill elision (the 27%-improvement claim of Fig. 8).
fn ablation_liveness(c: &mut Criterion) {
    let s = setup();
    let opts = HybridOptions {
        load: s.load.clone(),
        ..Default::default()
    };
    let mut g = c.benchmark_group("ablation_liveness");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("full", |b| b.iter(|| cycles(s, Jasan::hybrid(), &opts)));
    g.bench_function("no_liveness", |b| {
        b.iter(|| cycles(s, Jasan::hybrid_base(), &opts))
    });
    g.finish();
    let full = cycles(s, Jasan::hybrid(), &opts);
    let base = cycles(s, Jasan::hybrid_base(), &opts);
    eprintln!(
        "[ablation liveness] full={full} base={base} cycles — {:.1}% improvement",
        100.0 * (base - full) as f64 / base as f64
    );
}

/// No-op rules (§3.3.4): without them statically-clean blocks fall into
/// the dynamic fallback.
fn ablation_noop_rules(c: &mut Criterion) {
    let s = setup();
    let with = HybridOptions {
        load: s.load.clone(),
        ..Default::default()
    };
    let without = HybridOptions {
        load: s.load.clone(),
        no_noop_rules: true,
        ..Default::default()
    };
    let mut g = c.benchmark_group("ablation_noop_rules");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("with_noop_rules", |b| {
        b.iter(|| cycles(s, Jasan::hybrid(), &with))
    });
    g.bench_function("without_noop_rules", |b| {
        b.iter(|| cycles(s, Jasan::hybrid(), &without))
    });
    g.finish();
    eprintln!(
        "[ablation noop-rules] with={} without={} cycles",
        cycles(s, Jasan::hybrid(), &with),
        cycles(s, Jasan::hybrid(), &without)
    );
}

/// SCEV-derived cached checks for loop-invariant accesses (§3.3.2).
fn ablation_cached_checks(c: &mut Criterion) {
    let s = setup();
    let opts = HybridOptions {
        load: s.load.clone(),
        ..Default::default()
    };
    let cached = || {
        Jasan::new(JasanOptions {
            cached_checks: true,
            ..JasanOptions::default()
        })
    };
    let uncached = || {
        Jasan::new(JasanOptions {
            cached_checks: false,
            ..JasanOptions::default()
        })
    };
    let mut g = c.benchmark_group("ablation_cached_checks");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("cached", |b| b.iter(|| cycles(s, cached(), &opts)));
    g.bench_function("uncached", |b| b.iter(|| cycles(s, uncached(), &opts)));
    g.finish();
}

/// Static pass entirely on versus off (hybrid vs dynamic-only): the
/// central claim of the paper.
fn ablation_hybrid_vs_dynamic(c: &mut Criterion) {
    let s = setup();
    let hybrid = HybridOptions {
        load: s.load.clone(),
        ..Default::default()
    };
    let dynamic = HybridOptions {
        load: s.load.clone(),
        dynamic_only: true,
        ..Default::default()
    };
    let mut g = c.benchmark_group("ablation_hybrid");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("hybrid", |b| b.iter(|| cycles(s, Jasan::hybrid(), &hybrid)));
    g.bench_function("dynamic_only", |b| {
        b.iter(|| cycles(s, Jasan::hybrid(), &dynamic))
    });
    g.finish();
    eprintln!(
        "[ablation hybrid] hybrid={} dynamic-only={} cycles",
        cycles(s, Jasan::hybrid(), &hybrid),
        cycles(s, Jasan::hybrid(), &dynamic)
    );
}

criterion_group!(
    ablations,
    ablation_liveness,
    ablation_noop_rules,
    ablation_cached_checks,
    ablation_hybrid_vs_dynamic
);
criterion_main!(ablations);
