//! Shared helpers for the Criterion benches live in the bench crate root.
