//! Control-flow hijacks versus JCFI and the baseline CFI policies.
//!
//! Demonstrates (a) a smashed return address stopped by the shadow stack
//! but admitted by BinCFI's call-preceded policy, and (b) the qsort
//! comparator pattern that Lockdown's strong policy falsely flags while
//! JCFI's address-taken scan admits it (paper §6.2.2).
//!
//! ```sh
//! cargo run --example cfi_attacks
//! ```

use janitizer::asm::{assemble, AsmOptions};
use janitizer::baselines::{static_rewriter_costs, CfiBaseline, CfiPolicy};
use janitizer::core::EngineOptions;
use janitizer::link::{link, LinkOptions};
use janitizer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- (a) return-address smash, hand-written for precision.
    let smash = ".section text\n.global _start\n_start:\n\
                 call victim\n mov r0, 1\n ret\n\
                 decoy:\n call victim2\n mov r0, 66\n ret\n\
                 victim:\n la r8, decoy\n add r8, 5\n st8 [sp], r8\n nop\n ret\n\
                 victim2:\n ret\n";
    let obj = assemble("smash.s", smash, &AsmOptions::default())?;
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::executable("smash"))?);

    let jcfi = run_hybrid(&store, "smash", Jcfi::hybrid(), &HybridOptions::default())?;
    println!("JCFI vs return smash    : {:?}", jcfi.outcome);

    let bincfi_opts = HybridOptions {
        engine: EngineOptions {
            costs: static_rewriter_costs(),
            ..Default::default()
        },
        ..Default::default()
    };
    let bincfi = run_hybrid(
        &store,
        "smash",
        CfiBaseline::new(CfiPolicy::BinCfi),
        &bincfi_opts,
    )?;
    println!(
        "BinCFI vs return smash  : exit {:?} (call-preceded target admitted!)",
        bincfi.outcome.code()
    );

    // ---- (b) the callback pattern.
    let callback_src = r#"
        static long by_mod7(long a, long b) { return a % 7 - b % 7; }
        long main() {
            long v = malloc(10 * 8);
            for (long i = 0; i < 10; i++) *(v + i * 8) = (i * 13) % 29;
            qsort(v, 10, &by_mod7);     /* comparator crosses into libjc */
            long r = *(v + 0);
            free(v);
            return r;
        }
    "#;
    let base = library_base();
    let store2 = build_case(&base, "callbacks", callback_src);

    let jcfi2 = run_hybrid(&store2, "callbacks", Jcfi::hybrid(), &HybridOptions::default())?;
    println!("JCFI vs qsort callback  : exit {:?} (no false positive)", jcfi2.outcome.code());

    let lockdown_opts = HybridOptions {
        dynamic_only: true,
        engine: EngineOptions {
            costs: janitizer::baselines::lockdown_costs(),
            halt_on_violation: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let lockdown = run_hybrid(
        &store2,
        "callbacks",
        CfiBaseline::new(CfiPolicy::LockdownStrong),
        &lockdown_opts,
    )?;
    println!(
        "Lockdown(S) vs callback : exit {:?} with {} false positives",
        lockdown.outcome.code(),
        lockdown.engine.reports.len()
    );
    Ok(())
}
