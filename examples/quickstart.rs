//! Quickstart: compile a buggy C-like program with the guest toolchain,
//! watch it run "fine" natively, then catch the bug with JASan and the
//! hijack with JCFI.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use janitizer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a classic off-by-one heap overflow.
    let source = r#"
        long sum_table(long *t, long n) {
            long s = 0;
            for (long i = 0; i <= n; i++) s += t[i];   /* <= : off by one */
            return s;
        }
        long main() {
            long t = malloc(5 * 8);
            for (long i = 0; i < 5; i++) *(t + i * 8) = i * 10;
            long s = sum_table(t, 5);
            free(t);
            return s % 256;
        }
    "#;

    // Build it against the guest libc (malloc/free/qsort/...).
    let base = library_base();
    let store = build_case(&base, "buggy", source);

    // 1. Natively the overflow reads stale heap and "works".
    let (exit, proc) = run_native(&store, "buggy", &LoadOptions::default(), 0)?;
    println!("native run     : exit {:?} after {} instructions", exit.code(), proc.insns);

    // 2. Under Janitizer+JASan the static analyzer marks every load/store
    //    with liveness-annotated rewrite rules, the dynamic modifier
    //    instruments them, and the LD_PRELOADed allocator poisons
    //    redzones: the very first out-of-bounds read reports.
    let opts = HybridOptions {
        load: LoadOptions {
            preload: vec![RT_MODULE.into()],
            ..Default::default()
        },
        ..Default::default()
    };
    let run = run_hybrid(&store, "buggy", Jasan::hybrid(), &opts)?;
    match &run.outcome {
        RunOutcome::Violation(report) => println!("jasan          : {report}"),
        other => println!("jasan          : unexpected {other:?}"),
    }
    println!(
        "jasan coverage : {} blocks static, {} dynamic-fallback",
        run.coverage.static_blocks, run.coverage.dynamic_blocks
    );

    // 3. JCFI protects control flow: smash a return address and the
    //    shadow stack catches it.
    let hijack = r#"
        long gadget() { return 66; }
        long victim(long *p) {
            /* pretend an overflow let the attacker write the return
               address: emulate by writing through a wild pointer */
            *p = &gadget;
            return 0;
        }
        long main() {
            long x = 0;
            victim(&x);
            long f = x;     /* attacker-controlled code pointer */
            return f();     /* ...but used as an indirect call: allowed
                               (gadget is address-taken) */
        }
    "#;
    let store2 = build_case(&base, "hijack", hijack);
    let run2 = run_hybrid(&store2, "hijack", Jcfi::hybrid(), &HybridOptions::default())?;
    println!("jcfi (legal)   : exit {:?} — address-taken targets stay callable", run2.outcome.code());

    Ok(())
}
