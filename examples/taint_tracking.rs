//! JTaint: the third technique on the framework — taint tracking from
//! program inputs to indirect control transfers.
//!
//! A dispatcher indexes a handler table with *raw input*; with a bounds
//! check the input never reaches the call target computation tainted...
//! except it does — taint tracking shows the target register still
//! derives from input, which is exactly the class of bug CFI's
//! "valid-target" checks famously cannot see (the target IS valid).
//!
//! ```sh
//! cargo run --example taint_tracking
//! ```

use janitizer::asm::{assemble, AsmOptions};
use janitizer::link::{link, LinkOptions};
use janitizer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dispatcher that computes its jump target from getarg(0).
    let src = ".section text\n.global _start\n_start:\n\
        mov r0, 9\n mov r1, 0\n syscall\n      ; r0 = getarg(0)\n\
        mod r0, 2\n                            ; 'bounds check'\n\
        mul r0, 16\n\
        la r8, handler0\n add r8, r0\n\
        call r8\n ret\n\
        .align 16\n\
        handler0:\n mov r0, 10\n ret\n\
        .align 16\n\
        handler1:\n mov r0, 20\n ret\n";
    let obj = assemble("d.s", src, &AsmOptions::default())?;
    let mut store = ModuleStore::new();
    store.add(link(&[obj], &LinkOptions::executable("dispatch"))?);

    let mk_opts = |arg: u64| HybridOptions {
        load: LoadOptions {
            args: vec![arg],
            ..Default::default()
        },
        ..Default::default()
    };

    // JCFI is satisfied: both computed targets are real function entries.
    let jcfi = run_hybrid(&store, "dispatch", Jcfi::hybrid(), &mk_opts(1))?;
    println!("JCFI  : exit {:?} — target is a valid function, CFI passes", jcfi.outcome.code());

    // JTaint flags the transfer: its target derives from untrusted input.
    let jt = Jtaint::new();
    let state = std::rc::Rc::clone(&jt.state);
    let taint = run_hybrid(&store, "dispatch", jt, &mk_opts(1))?;
    match &taint.outcome {
        RunOutcome::Violation(r) => println!("JTaint: {r}"),
        other => println!("JTaint: unexpected {other:?}"),
    }
    let st = state.borrow();
    println!(
        "JTaint: {} propagation probes, {} input sources observed",
        st.propagations, st.sourced
    );

    // The same dispatcher with a sanitizing table lookup through trusted
    // memory is clean (constants overwrite taint).
    let clean = ".section text\n.global _start\n_start:\n\
        mov r0, 9\n mov r1, 0\n syscall\n\
        mod r0, 2\n\
        la r8, table\n ld8 r8, [r8+r0*8]\n\
        mov r9, r8\n\
        la r8, handler0\n cmp r9, r8\n je ok\n\
        la r8, handler1\n\
        ok:\n call r8\n ret\n\
        handler0:\n mov r0, 10\n ret\n\
        handler1:\n mov r0, 20\n ret\n\
        .section rodata\ntable: .quad handler0, handler1\n";
    let obj2 = assemble("c.s", clean, &AsmOptions::default())?;
    let mut store2 = ModuleStore::new();
    store2.add(link(&[obj2], &LinkOptions::executable("dispatch"))?);
    let ok = run_hybrid(&store2, "dispatch", Jtaint::new(), &mk_opts(1))?;
    println!(
        "JTaint: sanitized dispatcher exits {:?} with {} reports",
        ok.outcome.code(),
        ok.engine.reports.len()
    );
    Ok(())
}
