//! Static-analyzer tour: disassemble a workload binary and print what the
//! core layer recovers — blocks, functions, jump tables, liveness,
//! canaries, code pointers — followed by the rewrite rules JASan's static
//! pass emits for it (paper Figures 2a, 3 and 6).
//!
//! ```sh
//! cargo run --example inspect_binary [workload]
//! ```

use janitizer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gcc".into());
    let world = build_world(&BuildOptions {
        scale: 0.1,
        ..Default::default()
    });
    let image = world
        .store
        .get(&which)
        .ok_or_else(|| format!("unknown workload `{which}`"))?;

    println!("module `{}` ({}, {} code bytes)", image.name,
        if image.pic { "PIC" } else { "non-PIC" }, image.code_bytes());

    let ctx = StaticContext::analyze(&image);
    println!("\n-- control-flow recovery --");
    println!("basic blocks        : {}", ctx.cfg.blocks.len());
    println!("instructions        : {}", ctx.cfg.insn_count());
    println!("functions           : {}", ctx.cfg.functions.len());
    println!("jump tables         : {}", ctx.cfg.jump_tables.len());
    println!("unresolved indirect : {}", ctx.cfg.unresolved_indirect.len());

    if let Some(jt) = ctx.cfg.jump_tables.first() {
        println!(
            "first jump table    : jmp @{:#x}, {} targets from {:#x}",
            jt.jmp_addr,
            jt.targets.len(),
            jt.table_addr
        );
    }

    println!("\n-- analyses --");
    println!("canary sites        : {}", ctx.canaries.len());
    for site in ctx.canaries.iter().take(3) {
        println!(
            "  poison after {:#x}, unpoison before {:#x} (slot fp{:+})",
            site.poison_at, site.check_load_addr, site.slot_disp
        );
    }
    println!("natural loops       : {}", ctx.loops.len());
    println!("invariant accesses  : {}", ctx.invariants.len());
    println!(
        "code-ptr scan       : {} at instruction boundaries, {} at function entries",
        ctx.scan.at_insn_boundary.len(),
        ctx.scan.at_func_entry.len()
    );

    // Liveness sample: how many checks could skip spills entirely?
    let mut free2 = 0usize;
    let mut total = 0usize;
    let mut flags_dead = 0usize;
    for block in ctx.cfg.blocks.values() {
        for (addr, insn) in &block.insns {
            if insn.mem_access().is_some() {
                total += 1;
                if ctx.liveness.dead_regs_at(*addr, insn).count_ones() >= 2 {
                    free2 += 1;
                }
                if !ctx.liveness.flags_live_at(*addr) {
                    flags_dead += 1;
                }
            }
        }
    }
    println!("\n-- liveness headroom over {total} memory accesses --");
    println!("two dead scratch regs : {free2} ({:.0}%)", 100.0 * free2 as f64 / total.max(1) as f64);
    println!("flags dead            : {flags_dead} ({:.0}%)", 100.0 * flags_dead as f64 / total.max(1) as f64);

    // The rewrite rules the JASan static pass would ship (Figure 3).
    let file = analyze_statically(&image, &Jasan::hybrid());
    println!("\n-- rewrite rules ({} total) --", file.rules.len());
    for r in file.rules.iter().take(8) {
        let name = match r.id {
            0 => "NO_OP",
            janitizer::jasan::RULE_MEM_ACCESS => "MEM_ACCESS",
            janitizer::jasan::RULE_POISON_CANARY => "POISON_CANARY",
            janitizer::jasan::RULE_UNPOISON_CANARY => "UNPOISON_CANARY",
            _ => "?",
        };
        println!(
            "  {:<16} bb {:#010x} instr {:#010x} data {:#06x}",
            name, r.bb_addr, r.instr_addr, r.data[0]
        );
    }
    println!("  ...");
    Ok(())
}
