//! Comprehensive coverage: why the *hybrid* matters.
//!
//! A host application `dlopen`s a plugin (invisible to `ldd` and thus to
//! any static rewriter) and JIT-generates code at run time. A
//! RetroWrite-style static-only sanitizer instruments neither; Janitizer's
//! dynamic fallback instruments both — the paper's core claim (§3.4.3,
//! Figure 14).
//!
//! ```sh
//! cargo run --example full_coverage
//! ```

use janitizer::asm::{assemble, AsmOptions};
use janitizer::baselines::{static_rewriter_costs, Retrowrite};
use janitizer::core::EngineOptions;
use janitizer::link::{link, LinkOptions};
use janitizer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The plugin writes one byte past a heap object when poked.
    let plugin_src = r#"
        long plugin_work(long p, long n) {
            char *c = p;
            for (long i = 0; i <= n; i++) c[i] = i;   /* off by one */
            return n;
        }
    "#;
    let plugin_asm = janitizer::minic::compile(plugin_src, &CompileOptions::default())?;
    let plugin_obj = assemble("plugin.c.s", &plugin_asm, &AsmOptions { pic: true })?;
    let plugin = link(
        &[plugin_obj],
        &LinkOptions::shared_object("libplugin.so").needs("libjc.so"),
    )?;

    // The host loads it at run time — no DT_NEEDED entry.
    let host_src = r#"
        long main() {
            long h = dlopen("libplugin.so");
            long work = dlsym(h, "plugin_work");
            long buf = malloc(32);
            long r = work(buf, 32);
            free(buf);
            return r % 100;
        }
    "#;

    let base = library_base();
    let mut store = build_case(&base, "host", host_src);
    store.add(plugin);

    let jasan_opts = HybridOptions {
        load: LoadOptions {
            preload: vec![RT_MODULE.into()],
            ..Default::default()
        },
        ..Default::default()
    };

    // RetroWrite-like static rewriting: zero run-time engine cost, but the
    // dlopen'ed code is never instrumented — the overflow sails through.
    let rw_opts = HybridOptions {
        engine: EngineOptions {
            costs: static_rewriter_costs(),
            ..Default::default()
        },
        ..jasan_opts.clone()
    };
    let rw = run_hybrid(&store, "host", Retrowrite::new(), &rw_opts)?;
    println!("retrowrite : {:?}  (plugin overflow missed)", rw.outcome);

    // Janitizer's hybrid JASan: statically-analyzed modules get optimized
    // rules; the plugin goes through the dynamic fallback — and reports.
    let ja = run_hybrid(&store, "host", Jasan::hybrid(), &jasan_opts)?;
    match &ja.outcome {
        RunOutcome::Violation(r) => println!("jasan      : {r}"),
        other => println!("jasan      : unexpected {other:?}"),
    }
    println!(
        "coverage   : {} static blocks, {} dynamic-fallback blocks ({:.1}% dynamic)",
        ja.coverage.static_blocks,
        ja.coverage.dynamic_blocks,
        ja.coverage.dynamic_fraction()
    );
    Ok(())
}
