//! # Janitizer — hybrid static-dynamic binary security (facade crate)
//!
//! A Rust reproduction of *"Janitizer: Rethinking Binary Tools for
//! Practical and Comprehensive Security"* (Arif, Ainsworth, Jones —
//! CGO '25). This crate re-exports the whole workspace; see `README.md`
//! for the architecture overview, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The typical flow mirrors Figure 1 of the paper:
//!
//! 1. build guest modules with the toolchain crates ([`minic`], [`asm`],
//!    [`link`]) or use the prebuilt workload universe
//!    ([`workloads::build_world`]);
//! 2. pick a security plugin — [`jasan::Jasan`] (memory sanitizer) or
//!    [`jcfi::Jcfi`] (control-flow integrity) — or write your own
//!    [`core::SecurityPlugin`];
//! 3. run it hybrid with [`core::run_hybrid`]: the static analyzer
//!    produces rewrite rules for every `ldd`-visible module, and the
//!    dynamic modifier applies them at run time, falling back to per-block
//!    dynamic analysis for `dlopen`ed and JIT-generated code.
//!
//! ```
//! use janitizer::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Compile a buggy program with the guest toolchain.
//! let src = "long main() { long p = malloc(16); return *(p + 16); }";
//! let store = {
//!     let base = janitizer::workloads::library_base();
//!     janitizer::workloads::build_case(&base, "demo", src)
//! };
//! // Natively the overflow is silent...
//! let (native, _) = run_native(&store, "demo", &LoadOptions::default(), 0)?;
//! assert!(native.code().is_some());
//! // ...under JASan it is caught at the faulty load.
//! let opts = HybridOptions {
//!     load: LoadOptions { preload: vec![RT_MODULE.into()], ..Default::default() },
//!     ..Default::default()
//! };
//! let run = run_hybrid(&store, "demo", Jasan::hybrid(), &opts)?;
//! assert!(matches!(run.outcome, RunOutcome::Violation(_)));
//! # Ok(())
//! # }
//! ```

pub use janitizer_analysis as analysis;
pub use janitizer_asm as asm;
pub use janitizer_baselines as baselines;
pub use janitizer_core as core;
pub use janitizer_dbt as dbt;
pub use janitizer_isa as isa;
pub use janitizer_jasan as jasan;
pub use janitizer_jcfi as jcfi;
pub use janitizer_jtaint as jtaint;
pub use janitizer_link as link;
pub use janitizer_minic as minic;
pub use janitizer_obj as obj;
pub use janitizer_rules as rules;
pub use janitizer_vm as vm;
pub use janitizer_workloads as workloads;

/// Convenience re-exports for examples and quick starts.
pub mod prelude {
    pub use janitizer_core::{
        analyze_statically, run_hybrid, run_native, CoverageStats, HybridOptions, HybridRun,
        Report, RunOutcome, SecurityPlugin, StaticContext,
    };
    pub use janitizer_jasan::{Jasan, JasanOptions, RT_MODULE};
    pub use janitizer_jcfi::{Jcfi, JcfiOptions};
    pub use janitizer_jtaint::Jtaint;
    pub use janitizer_minic::{compile, CompileOptions};
    pub use janitizer_vm::{Exit, LoadOptions, ModuleStore};
    pub use janitizer_workloads::{build_case, build_world, library_base, BuildOptions};
}
