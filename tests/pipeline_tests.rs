//! Workspace-level integration tests: the full pipeline across crates,
//! on the real workload universe.

use janitizer::baselines::{static_rewriter_costs, Retrowrite};
use janitizer::core::EngineOptions;
use janitizer::prelude::*;
use janitizer::rules::RuleFile;

fn small_world() -> janitizer::workloads::World {
    build_world(&BuildOptions {
        scale: 0.1,
        ..Default::default()
    })
}

/// Every tool must preserve the semantics of every workload it can run:
/// same exit code as native, no spurious reports.
#[test]
fn tools_preserve_workload_semantics() {
    let world = small_world();
    let mut store = world.store.clone();
    store.add(janitizer::baselines::memcheck_runtime());
    for (i, w) in world.workloads.iter().enumerate() {
        let load = LoadOptions {
            args: vec![world.args[i]],
            ..Default::default()
        };
        let (native, _) = run_native(&store, w.name, &load, 0).unwrap();
        let native_code = native.code().unwrap_or_else(|| panic!("{} native: {native:?}", w.name));

        // JASan hybrid.
        let ja = run_hybrid(
            &store,
            w.name,
            Jasan::hybrid(),
            &HybridOptions {
                load: LoadOptions {
                    preload: vec![RT_MODULE.into()],
                    ..load.clone()
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(ja.outcome.code(), Some(native_code), "{} under jasan: {:?}", w.name, ja.outcome);
        assert!(ja.engine.reports.is_empty(), "{} jasan FPs: {:?}", w.name, ja.engine.reports.first());

        // JCFI hybrid.
        let jc = run_hybrid(&store, w.name, Jcfi::hybrid(), &HybridOptions {
            load: load.clone(),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(jc.outcome.code(), Some(native_code), "{} under jcfi: {:?}", w.name, jc.outcome);
        assert!(jc.engine.reports.is_empty(), "{} jcfi FPs: {:?}", w.name, jc.engine.reports.first());
    }
}

/// Rewrite rules survive their on-disk format for every workload module.
#[test]
fn rule_files_roundtrip_for_all_modules() {
    let world = small_world();
    for name in world.store.names() {
        let image = world.store.get(name).unwrap();
        let file = analyze_statically(&image, &Jasan::hybrid());
        let bytes = file.to_bytes();
        let back = RuleFile::from_bytes(&bytes).unwrap();
        assert_eq!(file, back, "rule file roundtrip for {name}");
        assert!(!file.rules.is_empty(), "{name} should have at least no-op rules");
    }
}

/// The static pass runs once per module, not per program: rules computed
/// for libjc.so apply to every executable that links it.
#[test]
fn shared_library_rules_are_program_independent() {
    let world = small_world();
    let libjc = world.store.get("libjc.so").unwrap();
    let f1 = analyze_statically(&libjc, &Jasan::hybrid());
    let f2 = analyze_statically(&libjc, &Jasan::hybrid());
    assert_eq!(f1, f2, "static analysis is deterministic");
}

/// Static-only rewriting misses dlopen'ed code; the hybrid covers it.
/// (The lbm workload pulls its kernel in via dlopen.)
#[test]
fn hybrid_covers_dlopened_code_retrowrite_does_not() {
    let world = small_world();
    let idx = world.workloads.iter().position(|w| w.name == "lbm").unwrap();
    let load = LoadOptions {
        args: vec![world.args[idx]],
        preload: vec![RT_MODULE.into()],
        ..Default::default()
    };
    let ja = run_hybrid(&world.store, "lbm", Jasan::hybrid(), &HybridOptions {
        load: load.clone(),
        ..Default::default()
    })
    .unwrap();
    assert!(ja.coverage.dynamic_blocks > 0, "plugin blocks hit the fallback");

    let rw = run_hybrid(&world.store, "lbm", Retrowrite::new(), &HybridOptions {
        load,
        engine: EngineOptions {
            costs: static_rewriter_costs(),
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    // Same program result, but the static tool never instruments the
    // plugin (it has rules for zero of the dynamic blocks).
    assert_eq!(rw.outcome.code(), ja.outcome.code());
}

/// Deterministic evaluation: two identical hybrid runs produce identical
/// cycle counts (the whole performance model is reproducible).
#[test]
fn hybrid_runs_are_deterministic() {
    let world = small_world();
    for name in ["mcf", "gcc", "cactusADM"] {
        let idx = world.workloads.iter().position(|w| w.name == name).unwrap();
        let load = LoadOptions {
            args: vec![world.args[idx]],
            preload: vec![RT_MODULE.into()],
            ..Default::default()
        };
        let opts = HybridOptions {
            load,
            ..Default::default()
        };
        let a = run_hybrid(&world.store, name, Jasan::hybrid(), &opts).unwrap();
        let b = run_hybrid(&world.store, name, Jasan::hybrid(), &opts).unwrap();
        assert_eq!(a.cycles, b.cycles, "{name} cycles differ");
        assert_eq!(a.insns, b.insns);
        assert_eq!(a.outcome, b.outcome);
    }
}

/// The no-op-rule ablation: disabling §3.3.4's markers pushes clean
/// static blocks into the dynamic fallback and costs performance.
#[test]
fn noop_rules_ablation_costs_cycles() {
    let world = small_world();
    let idx = world.workloads.iter().position(|w| w.name == "mcf").unwrap();
    let load = LoadOptions {
        args: vec![world.args[idx]],
        preload: vec![RT_MODULE.into()],
        ..Default::default()
    };
    let with = run_hybrid(&world.store, "mcf", Jasan::hybrid(), &HybridOptions {
        load: load.clone(),
        ..Default::default()
    })
    .unwrap();
    let without = run_hybrid(&world.store, "mcf", Jasan::hybrid(), &HybridOptions {
        load,
        no_noop_rules: true,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(with.outcome.code(), without.outcome.code());
    assert!(
        without.coverage.dynamic_blocks > with.coverage.dynamic_blocks,
        "clean blocks misclassify without no-op rules"
    );
    assert!(
        without.cycles > with.cycles,
        "misclassification costs cycles: {} vs {}",
        without.cycles,
        with.cycles
    );
}

/// ipa-ra end-to-end over a real workload build: the broken sanitizer
/// corrupts results, the fixed one does not.
#[test]
fn ipa_ra_world_end_to_end() {
    let world = build_world(&BuildOptions {
        scale: 0.1,
        ipa_ra: true,
    });
    let idx = world.workloads.iter().position(|w| w.name == "sjeng").unwrap();
    let load = LoadOptions {
        args: vec![world.args[idx]],
        preload: vec![RT_MODULE.into()],
        ..Default::default()
    };
    let (native, _) = run_native(&world.store, "sjeng", &load, 0).unwrap();
    let fixed = run_hybrid(&world.store, "sjeng", Jasan::hybrid(), &HybridOptions {
        load: load.clone(),
        ..Default::default()
    })
    .unwrap();
    assert_eq!(
        fixed.outcome.code(),
        native.code(),
        "interprocedural fix keeps ipa-ra binaries correct"
    );
}

/// The eval harness figures are themselves deterministic and well-formed.
#[test]
fn eval_figures_are_consistent() {
    // Run on a tiny scale through the public eval API.
    let ew = janitizer_eval::build_eval_world(0.05);
    let f14 = janitizer_eval::fig14(&ew);
    assert_eq!(f14.rows.len(), 28);
    // cactusADM must be the dynamic-code outlier.
    let cactus = f14
        .rows
        .iter()
        .find(|(n, _)| n == "cactusADM")
        .and_then(|(_, v)| v[0])
        .unwrap();
    for (name, vals) in &f14.rows {
        if name != "cactusADM" {
            let v = vals[0].unwrap();
            assert!(v < cactus, "{name} ({v}) should be below cactusADM ({cactus})");
        }
    }
}

/// Footnote 1 of §3.4: a dlopen'ed module that ships a rewrite-rule file
/// is processed like statically-seen code; without one it takes the
/// dynamic fallback.
#[test]
fn dlopened_module_with_rule_file_counts_as_static() {
    let world = small_world();
    let idx = world.workloads.iter().position(|w| w.name == "lbm").unwrap();
    let load = LoadOptions {
        args: vec![world.args[idx]],
        preload: vec![RT_MODULE.into()],
        ..Default::default()
    };
    // Without rules for the plugin: its blocks are dynamic.
    let without = run_hybrid(&world.store, "lbm", Jasan::hybrid(), &HybridOptions {
        load: load.clone(),
        ..Default::default()
    })
    .unwrap();
    // With a rule file shipped for liblbm.so: everything is static.
    let with = run_hybrid(&world.store, "lbm", Jasan::hybrid(), &HybridOptions {
        load,
        analyze_extra: vec!["liblbm.so".into()],
        ..Default::default()
    })
    .unwrap();
    assert_eq!(with.outcome.code(), without.outcome.code());
    assert!(without.coverage.dynamic_blocks > 0);
    assert_eq!(
        with.coverage.dynamic_blocks, 0,
        "rule file makes the plugin statically covered"
    );
    assert!(
        with.cycles <= without.cycles,
        "static rules are no slower than the fallback"
    );
}
